// Adaptive search-budget controller for BA*/DBA* (SearchConfig::kAuto).
//
// The open-queue safety valve (SearchConfig::max_open_paths) and the DBA*
// children beam (dba_beam_width) are fixed constants sized for the paper's
// 2400-host / 200-VM worst case.  Fixed budgets either waste memory on easy
// plans or silently degrade solution quality when the valve fires.  The
// controller turns both into per-plan decisions driven by a feedback loop:
//
//  * Cold start: the first plan of a scheduler session gets a static
//    estimate — node count x the (capped) candidate fan, times a headroom
//    factor — clamped to [floor, cap] and to the configured seed ceiling.
//  * Warm start: later plans are sized from an EWMA of the open-queue peaks
//    observed by prior runs (`SearchStats::open_queue_peak`), times the same
//    headroom; once the controller has real measurements the configured
//    ceiling no longer applies (in kAuto the config value is a seed, not a
//    bound).
//  * Valve-fire failure: when a search aborts on the valve with no feasible
//    placement (`SearchStats::hit_open_limit` and infeasible), the scheduler
//    retries with a geometrically widened budget (widen()), at most
//    `SearchConfig::budget_max_retries` times, before falling back to the
//    greedy EG completion — the bounded-retry ladder documented in
//    DESIGN.md section 8.
//
// Everything is bypassed under BudgetMode::kFixed (the default), which is
// bit-identical to the pre-controller behavior and differential-tested.
//
// Process-wide telemetry lives under the "budget." metrics prefix:
// counters budget.auto_decisions / warm_decisions / retries / valve_fires /
// greedy_fallbacks, summaries budget.max_open_paths / beam_width.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>

#include "core/types.h"

namespace ostro::core {

/// One budget decision: the limits to run a BA*/DBA* attempt under.
struct BudgetDecision {
  std::size_t max_open_paths = 0;  ///< open-queue valve (0 = unlimited)
  std::size_t beam_width = 0;      ///< DBA* children beam (0 = unlimited)
  int attempt = 0;                 ///< 0 = first attempt, n = nth retry
  bool warm = false;               ///< informed by a prior observation
};

/// Controller constants.  The SearchConfig knobs users are expected to
/// touch (seed ceiling, retry count, widening factor) stay in SearchConfig;
/// these shape the estimator itself.
struct BudgetPolicy {
  /// Never size an auto budget below this (except when the configured seed
  /// ceiling is itself smaller — an explicit tight-memory request).
  std::size_t floor_open_paths = 4'096;
  /// Hard cap for auto budgets, including widened retries (8x the paper's
  /// fixed 2M constant; a rung above it would not fit in memory anyway).
  std::size_t cap_open_paths = 16'000'000;
  /// Safety factor between a predicted queue peak and the granted budget.
  double peak_headroom = 4.0;
  /// Modeled candidate fan cap for the cold estimate: post host-equivalence
  /// dedup, expansions insert at most dozens of children per node, so the
  /// fan contribution is capped rather than multiplied by the fleet size.
  std::size_t fan_cap = 256;
  /// EWMA smoothing for the observed open-queue peak (0 < alpha <= 1).
  double ewma_alpha = 0.5;
  /// Widened retries double the DBA* beam per attempt up to this cap.
  std::size_t beam_cap = 512;
};

/// Feedback controller sizing BA*/DBA* budgets per plan.  One instance per
/// OstroScheduler carries the warm-start state across plans of a session;
/// stateless place_topology calls use a fresh (cold) instance.  All methods
/// are thread-safe.
class BudgetController {
 public:
  explicit BudgetController(BudgetPolicy policy = {}) : policy_(policy) {}

  /// Budget for the first attempt of a plan with `node_count` free nodes
  /// against a `host_count`-host fleet.  kFixed configs get the configured
  /// constants verbatim.
  [[nodiscard]] BudgetDecision decide(std::size_t node_count,
                                      std::size_t host_count,
                                      const SearchConfig& config);

  /// Next rung of the retry ladder after a valve-fire failure: geometric
  /// widening by config.budget_widen_factor (beam doubles), jumping at
  /// least to the policy floor.  Returns nullopt when the ladder is
  /// exhausted (attempt count, cap, or an unlimited budget that already
  /// failed) — the caller then falls back to EG.
  [[nodiscard]] std::optional<BudgetDecision> widen(
      const BudgetDecision& previous, const SearchConfig& config);

  /// Feeds the observed stats of a finished attempt back into the
  /// warm-start state (EWMA of open_queue_peak; valve-fire accounting).
  void observe(const BudgetDecision& decision, const SearchStats& stats);

  /// Records that the retry ladder was exhausted and the scheduler fell
  /// back to the greedy EG completion ("budget.greedy_fallbacks").
  void note_greedy_fallback();

  /// The cold-start estimate before headroom/clamping: node_count x
  /// min(host_count, fan_cap).  Exposed for tests and benches.
  [[nodiscard]] std::size_t static_estimate(std::size_t node_count,
                                            std::size_t host_count) const
      noexcept;

  [[nodiscard]] const BudgetPolicy& policy() const noexcept {
    return policy_;
  }

  /// Smoothed open-queue peak observed so far (0 before any observation).
  [[nodiscard]] double smoothed_peak() const;

 private:
  BudgetPolicy policy_;
  mutable std::mutex mutex_;
  double ewma_peak_ = 0.0;
  /// Smoothed paths_pruned_bound / paths_generated: how sharply the
  /// incumbent bound cuts the search.  Weakly-bounded sessions get extra
  /// headroom (their queues grow faster than the observed peaks suggest).
  double ewma_bound_prune_ratio_ = 0.0;
  bool has_history_ = false;
};

}  // namespace ostro::core
