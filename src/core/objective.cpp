#include "core/objective.h"

#include <algorithm>

namespace ostro::core {

Objective::Objective(const topo::AppTopology& topology,
                     const dc::DataCenter& datacenter,
                     const SearchConfig& config) {
  config.validate();
  const double sum = config.theta_bw + config.theta_c;
  theta_bw_ = config.theta_bw / sum;
  theta_c_ = config.theta_c / sum;

  const int worst_hops = dc::hop_count(datacenter.max_scope());
  ubw_worst_ = topology.total_edge_bandwidth() * std::max(1, worst_hops);
  // An edgeless topology has u_bw == 0 for every placement; any positive
  // normalizer keeps utility() well defined.
  if (ubw_worst_ <= 0.0) ubw_worst_ = 1.0;

  uc_worst_ = static_cast<double>(topology.node_count());
}

}  // namespace ostro::core
