#include "core/placement_io.h"

#include "core/objective.h"
#include "core/partial.h"
#include "core/verify.h"

namespace ostro::core {

util::Json placement_to_json(const Placement& placement,
                             const topo::AppTopology& topology,
                             const dc::DataCenter& datacenter) {
  if (!placement.feasible) {
    throw PlacementIoError("placement_to_json: placement is infeasible");
  }
  if (placement.assignment.size() != topology.node_count()) {
    throw PlacementIoError("placement_to_json: assignment size mismatch");
  }
  util::JsonObject assignment;
  for (const auto& node : topology.nodes()) {
    const dc::HostId host = placement.assignment[node.id];
    if (host == dc::kInvalidHost || host >= datacenter.host_count()) {
      throw PlacementIoError("placement_to_json: node " + node.name +
                             " unplaced");
    }
    assignment[node.name] = datacenter.host(host).name;
  }
  util::JsonObject document;
  document["assignment"] = util::Json(std::move(assignment));
  document["utility"] = placement.utility;
  document["reserved_bandwidth_mbps"] = placement.reserved_bandwidth_mbps;
  document["new_active_hosts"] = placement.new_active_hosts;
  document["hosts_used"] = placement.hosts_used;
  return util::Json(std::move(document));
}

Placement placement_from_json(const util::Json& document,
                              const topo::AppTopology& topology,
                              const dc::Occupancy& base,
                              const SearchConfig& config) {
  if (!document.is_object() || !document.contains("assignment")) {
    throw PlacementIoError("placement document has no assignment object");
  }
  const auto& mapping = document.at("assignment").as_object();

  net::Assignment assignment(topology.node_count(), dc::kInvalidHost);
  for (const auto& [node_name, host_name] : mapping) {
    const auto node = topology.find_node(node_name);
    if (!node) {
      throw PlacementIoError("placement names unknown node " + node_name);
    }
    const auto host = base.datacenter().find_host(host_name.as_string());
    if (!host) {
      throw PlacementIoError("placement names unknown host " +
                             host_name.as_string());
    }
    assignment[*node] = *host;
  }
  for (const auto& node : topology.nodes()) {
    if (assignment[node.id] == dc::kInvalidHost) {
      throw PlacementIoError("placement is missing node " + node.name);
    }
  }

  const auto violations = verify_placement(base, topology, assignment);
  if (!violations.empty()) {
    throw PlacementIoError("placement no longer validates: " +
                           violations.front());
  }

  // Recompute the metrics from scratch; the document's values are only
  // informational and may come from a different occupancy state.
  const Objective objective(topology, base.datacenter(), config);
  PartialPlacement state(topology, base, objective);
  for (topo::NodeId v = 0; v < assignment.size(); ++v) {
    state.place(v, assignment[v]);
  }
  Placement out;
  out.feasible = true;
  out.assignment = std::move(assignment);
  out.utility = state.utility_committed();
  out.reserved_bandwidth_mbps = state.ubw();
  out.new_active_hosts = state.new_active_hosts();
  out.hosts_used = static_cast<int>(state.used_hosts().size());
  return out;
}

std::string placement_to_text(const Placement& placement,
                              const topo::AppTopology& topology,
                              const dc::DataCenter& datacenter) {
  return placement_to_json(placement, topology, datacenter).pretty();
}

Placement placement_from_text(const std::string& text,
                              const topo::AppTopology& topology,
                              const dc::Occupancy& base,
                              const SearchConfig& config) {
  try {
    return placement_from_json(util::Json::parse(text), topology, base,
                               config);
  } catch (const util::JsonError& e) {
    throw PlacementIoError(std::string("placement is not valid JSON: ") +
                           e.what());
  }
}

}  // namespace ostro::core
