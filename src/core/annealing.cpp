#include "core/annealing.h"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/candidates.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/partial.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ostro::core {
namespace {

/// Rebuilds a PartialPlacement for a full assignment, re-checking every
/// constraint; nullopt when any node no longer fits.
[[nodiscard]] std::optional<PartialPlacement> materialize(
    const topo::AppTopology& topology, const dc::Occupancy& base,
    const Objective& objective, const net::Assignment& assignment) {
  PartialPlacement state(topology, base, objective);
  for (topo::NodeId v = 0; v < assignment.size(); ++v) {
    if (!state.can_place(v, assignment[v])) return std::nullopt;
    state.place(v, assignment[v]);
  }
  return state;
}

}  // namespace

void AnnealingConfig::validate() const {
  if (deadline_seconds <= 0.0) {
    throw std::invalid_argument("AnnealingConfig: deadline must be positive");
  }
  if (initial_temperature <= 0.0) {
    throw std::invalid_argument(
        "AnnealingConfig: temperature must be positive");
  }
  if (cooling <= 0.0 || cooling >= 1.0) {
    throw std::invalid_argument("AnnealingConfig: cooling must be in (0,1)");
  }
  if (moves_per_temperature <= 0) {
    throw std::invalid_argument(
        "AnnealingConfig: moves_per_temperature must be positive");
  }
}

Placement simulated_annealing(const dc::Occupancy& base,
                              const topo::AppTopology& topology,
                              const SearchConfig& config,
                              const AnnealingConfig& annealing) {
  config.validate();
  annealing.validate();
  const util::WallTimer timer;
  const util::Deadline deadline(annealing.deadline_seconds);
  util::Rng rng(annealing.seed);
  const Objective objective(topology, base.datacenter(), config);

  Placement result;

  // Seed: EG's placement, or a random feasible completion if EG dead-ends.
  net::Assignment current;
  {
    GreedyOutcome eg = run_greedy(Algorithm::kEg,
                                  PartialPlacement(topology, base, objective),
                                  eg_sort_order(topology), nullptr);
    if (eg.feasible) {
      current = eg.state.assignment();
    } else {
      PartialPlacement state(topology, base, objective);
      for (topo::NodeId v = 0; v < topology.node_count(); ++v) {
        const auto candidates = get_candidates(state, v);
        if (candidates.empty()) {
          result.failure_reason =
              "annealing: no feasible seed assignment (node " +
              topology.node(v).name + ")";
          result.stats.runtime_seconds = timer.elapsed_seconds();
          return result;
        }
        state.place(v, candidates[static_cast<std::size_t>(
                           rng.next_below(candidates.size()))]);
      }
      current = state.assignment();
    }
  }

  auto current_state = materialize(topology, base, objective, current);
  double current_utility = current_state->utility_committed();
  net::Assignment best = current;
  double best_utility = current_utility;

  double temperature = annealing.initial_temperature;
  const auto host_count =
      static_cast<dc::HostId>(base.datacenter().host_count());
  std::uint64_t moves = 0;
  std::uint64_t accepted = 0;

  while (!deadline.expired()) {
    for (int i = 0;
         i < annealing.moves_per_temperature && !deadline.expired(); ++i) {
      ++moves;
      // Move: re-home one random node onto a random host.
      net::Assignment proposal = current;
      const auto node = static_cast<topo::NodeId>(
          rng.next_below(topology.node_count()));
      proposal[node] = static_cast<dc::HostId>(rng.next_below(host_count));
      if (proposal[node] == current[node]) continue;

      const auto state = materialize(topology, base, objective, proposal);
      if (!state) continue;  // infeasible move
      const double utility = state->utility_committed();
      const double delta = utility - current_utility;
      if (delta <= 0.0 ||
          rng.uniform01() < std::exp(-delta / temperature)) {
        current = std::move(proposal);
        current_utility = utility;
        ++accepted;
        if (utility < best_utility) {
          best_utility = utility;
          best = current;
        }
      }
    }
    temperature *= annealing.cooling;
    if (temperature < 1e-9) temperature = annealing.initial_temperature / 10;
  }

  const auto final_state = materialize(topology, base, objective, best);
  result.feasible = true;
  result.assignment = best;
  result.utility = best_utility;
  result.reserved_bandwidth_mbps = final_state->ubw();
  result.new_active_hosts = final_state->new_active_hosts();
  result.hosts_used = static_cast<int>(final_state->used_hosts().size());
  result.stats.paths_expanded = accepted;
  result.stats.paths_generated = moves;
  result.stats.runtime_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace ostro::core
