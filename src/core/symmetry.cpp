#include "core/symmetry.h"

#include <algorithm>

namespace ostro::core {
namespace {

/// True when swapping a and b is an automorphism of `topology`.
bool interchangeable(const topo::AppTopology& topology, topo::NodeId a,
                     topo::NodeId b) {
  const topo::Node& na = topology.node(a);
  const topo::Node& nb = topology.node(b);
  if (na.kind != nb.kind) return false;
  if (!(na.requirements == nb.requirements)) return false;
  if (na.required_tags != nb.required_tags) return false;

  // Exactly the same zone and affinity memberships (indices are canonical).
  const auto za = topology.zones_of(a);
  const auto zb = topology.zones_of(b);
  if (!std::equal(za.begin(), za.end(), zb.begin(), zb.end())) return false;
  const auto ga = topology.affinities_of(a);
  const auto gb = topology.affinities_of(b);
  if (!std::equal(ga.begin(), ga.end(), gb.begin(), gb.end())) return false;

  // Identical neighbor sets excluding one another, with equal bandwidths.
  // (A mutual pipe is symmetric under the swap by construction.)
  // Pipes compare on (endpoint, bandwidth, latency budget).
  std::vector<std::tuple<topo::NodeId, double, double>> neighbors_a;
  std::vector<std::tuple<topo::NodeId, double, double>> neighbors_b;
  for (const auto& nbr : topology.neighbors(a)) {
    if (nbr.node != b) {
      neighbors_a.emplace_back(nbr.node, nbr.bandwidth_mbps,
                               topology.edges()[nbr.edge_index].max_latency_us);
    }
  }
  for (const auto& nbr : topology.neighbors(b)) {
    if (nbr.node != a) {
      neighbors_b.emplace_back(nbr.node, nbr.bandwidth_mbps,
                               topology.edges()[nbr.edge_index].max_latency_us);
    }
  }
  std::sort(neighbors_a.begin(), neighbors_a.end());
  std::sort(neighbors_b.begin(), neighbors_b.end());
  return neighbors_a == neighbors_b;
}

}  // namespace

SymmetryGroups detect_symmetry_groups(const topo::AppTopology& topology) {
  const std::size_t n = topology.node_count();
  SymmetryGroups out;
  out.group_of.assign(n, 0);

  // Pairwise interchangeability is not transitive (e.g. a pair of adjacent
  // twins plus a non-adjacent twin of one of them), so a node joins a group
  // only when it can swap with EVERY current member.  O(|V|^2 * degree),
  // negligible at the topology sizes the paper evaluates (<= 280 nodes).
  std::vector<std::vector<topo::NodeId>> members;  // group -> members
  std::vector<bool> nontrivial;
  for (topo::NodeId v = 0; v < n; ++v) {
    bool joined = false;
    for (std::uint32_t g = 0; g < members.size() && !joined; ++g) {
      const bool all = std::all_of(
          members[g].begin(), members[g].end(), [&](topo::NodeId m) {
            return interchangeable(topology, m, v);
          });
      if (all) {
        out.group_of[v] = g;
        members[g].push_back(v);
        nontrivial[g] = true;
        joined = true;
      }
    }
    if (!joined) {
      out.group_of[v] = static_cast<std::uint32_t>(members.size());
      members.push_back({v});
      nontrivial.push_back(false);
    }
  }
  out.group_count = members.size();
  out.nontrivial_groups =
      static_cast<std::size_t>(std::count(nontrivial.begin(), nontrivial.end(), true));
  return out;
}

}  // namespace ostro::core
