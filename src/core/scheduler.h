// OstroScheduler — the public entry point of the placement core.
//
// The scheduler owns the occupancy state of one data center and plans or
// deploys application topologies onto it with any of the five algorithms
// (Section III).  plan() is side-effect free; deploy() additionally commits
// the winning placement (host resources and pipe bandwidth) so that
// subsequent applications see the reduced capacity — the multi-tenant
// "non-uniform resource availability" regime of the paper.  Online
// adaptation (Section IV-E) is expressed through the `pinned` assignment of
// PlacementRequest: pinned nodes keep their hosts, free nodes (typically
// newly added ones) are optimized around them.
#pragma once

#include <memory>
#include <optional>

#include "core/budget.h"
#include "core/types.h"
#include "core/partial.h"
#include "datacenter/occupancy.h"
#include "util/thread_pool.h"

namespace ostro::core {

class OstroScheduler {
 public:
  /// `datacenter` must outlive the scheduler.
  explicit OstroScheduler(const dc::DataCenter& datacenter,
                          SearchConfig defaults = {});

  [[nodiscard]] const dc::DataCenter& datacenter() const noexcept {
    return *datacenter_;
  }
  [[nodiscard]] const dc::Occupancy& occupancy() const noexcept {
    return occupancy_;
  }
  [[nodiscard]] dc::Occupancy& occupancy() noexcept { return occupancy_; }

  /// Computes a placement without committing anything.
  [[nodiscard]] Placement plan(const topo::AppTopology& topology,
                               Algorithm algorithm) const;
  [[nodiscard]] Placement plan(const topo::AppTopology& topology,
                               Algorithm algorithm,
                               const SearchConfig& config) const;
  /// Full-control variant (pinning for online adaptation, Section IV-E).
  [[nodiscard]] Placement plan(const PlacementRequest& request,
                               Algorithm algorithm) const;

  /// Plans against an explicit occupancy (a PlacementService snapshot)
  /// instead of the live one, with this session's thread pool and
  /// budget-controller warm-start state.  `snapshot` must belong to the
  /// same data center.
  [[nodiscard]] Placement plan_against(const dc::Occupancy& snapshot,
                                       const topo::AppTopology& topology,
                                       Algorithm algorithm,
                                       const SearchConfig& config) const;

  /// plan() + commit the result into the scheduler's occupancy.  The
  /// returned placement's `committed` flag reports whether the commit
  /// happened: it is false when the placement is infeasible or when it
  /// overcommits link bandwidth (only EG_C can produce the latter — such a
  /// placement is feasible-but-uncommittable and must not be counted as
  /// deployed).
  Placement deploy(const topo::AppTopology& topology, Algorithm algorithm);
  Placement deploy(const topo::AppTopology& topology, Algorithm algorithm,
                   const SearchConfig& config);

  /// Commits an externally computed feasible placement.  Throws
  /// std::invalid_argument for infeasible or bandwidth-overcommitted ones.
  void commit(const topo::AppTopology& topology, const Placement& placement);

  /// The session's search-budget controller (used by plans whose config
  /// selects BudgetMode::kAuto).  Warm-start state accumulates across every
  /// plan of this scheduler; exposed for inspection and tests.
  [[nodiscard]] const BudgetController& budget_controller() const noexcept {
    return budget_controller_;
  }

  /// The SearchConfig the single-argument plan()/deploy() overloads use.
  [[nodiscard]] const SearchConfig& defaults() const noexcept {
    return defaults_;
  }

 private:
  const dc::DataCenter* datacenter_;
  dc::Occupancy occupancy_;
  SearchConfig defaults_;
  std::unique_ptr<util::ThreadPool> pool_;
  // plan() is const (it never touches occupancy); the controller's
  // warm-start state is planning telemetry, hence mutable.  The controller
  // is internally synchronized (every access to its EWMA state takes its
  // mutex), so concurrent const plan() calls are safe — the
  // PlacementService relies on this, and the concurrent-plan regression
  // test in tests/core/service_test.cpp runs it under TSan.
  mutable BudgetController budget_controller_;
};

/// Stateless one-shot planning against an explicit occupancy.  Under
/// BudgetMode::kAuto, `budget` carries warm-start state across calls (the
/// scheduler passes its session controller); a null `budget` uses a fresh
/// cold controller for this call only.
[[nodiscard]] Placement place_topology(const dc::Occupancy& base,
                                       const topo::AppTopology& topology,
                                       Algorithm algorithm,
                                       const SearchConfig& config,
                                       const net::Assignment* pinned = nullptr,
                                       util::ThreadPool* pool = nullptr,
                                       BudgetController* budget = nullptr);

}  // namespace ostro::core
