// Pooled memory model of the BA*/DBA* inner loop (SearchCore::kPooled;
// DESIGN.md section 11): a per-thread SearchArena that owns every search
// state and scratch structure and is reset — never freed — between plans,
// plus a preallocated 4-ary open heap keyed by the packed f-cost.  Both are
// bit-identical to the reference containers: the heap implements the exact
// strict total order of the reference comparator (entries carry unique
// sequence numbers, so the popped minimum is unique), and arena states
// replay the reference floating-point operation sequence through
// PartialPlacement's copy-on-write chain representation.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "core/partial.h"
#include "util/arena.h"

namespace ostro::core {

/// Packs a non-NaN double into a uint64 whose unsigned order equals the
/// double's order exactly (the standard sign-flip trick), with -0.0
/// normalized to +0.0 first: the two compare equal as doubles, so they must
/// pack to the same key or the heap's tiebreak would diverge from the
/// reference comparator.
[[nodiscard]] inline std::uint64_t pack_priority(double priority) noexcept {
  if (priority == 0.0) priority = 0.0;  // collapse -0.0 onto +0.0
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof priority);
  std::memcpy(&bits, &priority, sizeof bits);
  return (bits & 0x8000000000000000ULL) ? ~bits
                                        : bits ^ 0x8000000000000000ULL;
}

/// Exact inverse of pack_priority (up to the -0.0 normalization).
[[nodiscard]] inline double unpack_priority(std::uint64_t key) noexcept {
  const std::uint64_t bits =
      (key & 0x8000000000000000ULL) ? key ^ 0x8000000000000000ULL : ~key;
  double priority;
  std::memcpy(&priority, &bits, sizeof priority);
  return priority;
}

/// One open-list entry of the pooled core: the lazy child of the reference
/// PathEntry with the shared_ptr replaced by a raw arena pointer and the
/// priority replaced by its packed key.  Stored by value in the heap array.
struct HeapEntry {
  std::uint64_t key = 0;       ///< pack_priority(priority)
  std::uint64_t sequence = 0;  ///< unique insertion order; strict tiebreak
  const PartialPlacement* parent = nullptr;  ///< arena-owned; null = root
  topo::NodeId node = topo::kInvalidNode;
  dc::HostId host = dc::kInvalidHost;
  std::uint32_t depth = 0;
  bool exact = false;
};

/// Preallocated 4-ary min-heap over HeapEntry implementing the reference
/// PathOrder as a strict total order ("a pops before b"):
///   1. depth-first mode: deeper first;
///   2. smaller packed key (= smaller priority) first;
///   3. deeper first;
///   4. smaller sequence first.
/// Sequence numbers are unique among queued entries (a re-queued exact
/// entry reuses its sequence, but only after the original was popped), so
/// the minimum is unique and any heap over this order pops the identical
/// sequence of entries — which is what keeps kPooled bit-identical to the
/// reference std::priority_queue.
class OpenHeap {
 public:
  void configure(bool depth_first, std::size_t reserve_hint) {
    depth_first_ = depth_first;
    if (entries_.capacity() < reserve_hint) entries_.reserve(reserve_hint);
  }

  void push(const HeapEntry& entry) {
    entries_.push_back(entry);
    sift_up(entries_.size() - 1);
  }

  HeapEntry pop() {
    HeapEntry top = entries_.front();
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    return top;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return entries_.capacity() * sizeof(HeapEntry);
  }

 private:
  static constexpr std::size_t kArity = 4;

  [[nodiscard]] bool before(const HeapEntry& a,
                            const HeapEntry& b) const noexcept {
    if (depth_first_ && a.depth != b.depth) return a.depth > b.depth;
    if (a.key != b.key) return a.key < b.key;
    if (a.depth != b.depth) return a.depth > b.depth;
    return a.sequence < b.sequence;
  }

  void sift_up(std::size_t i) noexcept {
    const HeapEntry moving = entries_[i];
    while (i > 0) {
      const std::size_t up = (i - 1) / kArity;
      if (!before(moving, entries_[up])) break;
      entries_[i] = entries_[up];
      i = up;
    }
    entries_[i] = moving;
  }

  void sift_down(std::size_t i) noexcept {
    const HeapEntry moving = entries_[i];
    const std::size_t n = entries_.size();
    while (true) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(entries_[c], entries_[best])) best = c;
      }
      if (!before(entries_[best], moving)) break;
      entries_[i] = entries_[best];
      i = best;
    }
    entries_[i] = moving;
  }

  std::vector<HeapEntry> entries_;
  bool depth_first_ = false;
};

/// Per-thread memory pool of one search: every PartialPlacement the loop
/// materializes, the open heap, the closed set, and the per-expansion
/// scratch.  end_plan() recycles all of it — states keep their container
/// capacities and slab storage — so the next plan on the same thread runs
/// with zero steady-state allocations in the search core.
class SearchArena {
 public:
  SearchArena() = default;
  ~SearchArena();
  SearchArena(const SearchArena&) = delete;
  SearchArena& operator=(const SearchArena&) = delete;

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Starts a plan: configures the heap order, clears the recycled
  /// structures, and records whether warm memory is being reused.
  void begin_plan(bool depth_first, std::size_t open_reserve);
  /// Ends a plan: returns every state to the free list (objects stay
  /// constructed, capacities retained).
  void end_plan() noexcept;

  /// Returns a recycled (or, during warm-up, freshly constructed) state;
  /// the caller rebuilds it via assign_pooled_flat/branch_from.  `proto`
  /// supplies the constructor arguments for pool growth only.
  PartialPlacement& acquire(const PartialPlacement& proto);

  [[nodiscard]] OpenHeap& heap() noexcept { return heap_; }
  [[nodiscard]] util::StampedSet64& closed() noexcept { return closed_; }
  [[nodiscard]] util::StampedSet64& dedupe_seen() noexcept {
    return dedupe_seen_;
  }
  [[nodiscard]] std::vector<dc::HostId>& dedupe_kept() noexcept {
    return dedupe_kept_;
  }
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>&
  signature_scratch() noexcept {
    return signature_keys_;
  }
  [[nodiscard]] std::vector<std::pair<double, dc::HostId>>&
  children_scratch() noexcept {
    return children_;
  }

  /// States handed out since begin_plan.
  [[nodiscard]] std::uint64_t states_in_use() const noexcept {
    return in_use_;
  }
  /// Plans completed (end_plan calls) over the arena's lifetime.
  [[nodiscard]] std::uint64_t plans_served() const noexcept { return plans_; }
  /// True when begin_plan found warm structures from a previous plan.
  [[nodiscard]] bool warm() const noexcept { return warm_; }
  /// Bytes retained across plans: pooled states (slab storage + container
  /// capacities), heap, closed set, and scratch.
  [[nodiscard]] std::size_t bytes_retained() const noexcept;

 private:
  util::ChunkArena slabs_;  // raw storage of the pooled states
  std::vector<PartialPlacement*> states_;
  std::uint64_t in_use_ = 0;
  OpenHeap heap_;
  util::StampedSet64 closed_;
  util::StampedSet64 dedupe_seen_;
  std::vector<dc::HostId> dedupe_kept_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> signature_keys_;
  std::vector<std::pair<double, dc::HostId>> children_;
  bool active_ = false;
  bool warm_ = false;
  std::uint64_t plans_ = 0;
};

/// The calling thread's arena.  One arena per thread keeps concurrent
/// PlacementService/StreamingService plans fully isolated (no shared state,
/// nothing for TSan to find) while a long-lived worker reuses warm memory
/// across every request it serves.
[[nodiscard]] SearchArena& thread_search_arena();

}  // namespace ostro::core
