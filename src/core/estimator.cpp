#include "core/estimator.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/metrics.h"

namespace ostro::core {
namespace {

[[nodiscard]] dc::Scope forced_scope(topo::DiversityLevel level) noexcept {
  switch (level) {
    case topo::DiversityLevel::kHost: return dc::Scope::kSameRack;
    case topo::DiversityLevel::kRack: return dc::Scope::kSamePod;
    case topo::DiversityLevel::kPod: return dc::Scope::kSameSite;
    case topo::DiversityLevel::kDatacenter: return dc::Scope::kCrossSite;
  }
  return dc::Scope::kSameRack;
}

/// Where a node sits during the imaginary completion: a real host, an
/// imaginary host, or nowhere yet.
struct Location {
  enum class Kind : std::uint8_t { kNone, kReal, kImaginary } kind = Kind::kNone;
  std::uint32_t index = 0;  ///< HostId or imaginary-host index

  [[nodiscard]] bool assigned() const noexcept { return kind != Kind::kNone; }
  [[nodiscard]] bool same_as(const Location& o) const noexcept {
    return kind == o.kind && index == o.index && assigned();
  }
};

struct WorkHost {
  Location location;
  topo::Resources residual;
  std::vector<topo::NodeId> nodes;
};

}  // namespace

double Estimator::rest_bound(const PartialPlacement& p, topo::NodeId node) {
  double incident = 0.0;
  for (const auto& nb : p.topology().neighbors(node)) {
    incident += p.edge_bound(nb.edge_index);
  }
  return p.remaining_bw_bound() - incident;
}

Estimate Estimator::candidate_estimate(const PartialPlacement& p,
                                       topo::NodeId node, dc::HostId host,
                                       double rest) {
  static util::metrics::Counter& m_estimates =
      util::metrics::counter("estimator.candidate_estimates");
  m_estimates.inc();
  const topo::AppTopology& topology = p.topology();
  const dc::DataCenter& datacenter = p.datacenter();

  Estimate est;
  est.ubw = rest;
  est.uc = p.is_active(host) ? 0.0 : 1.0;

  // Bandwidth the node's pipes will put on the candidate host's uplink:
  // committed now (placed neighbors off-host) plus the future remote pipes
  // (unplaced neighbors that will not fit next to the node here).
  double uplink_now = 0.0;
  double uplink_future = 0.0;
  // Other residents' pipes to unplaced nodes also compete for this uplink;
  // pipes from residents to `node` itself resolve on co-location, so they
  // are deducted below.  The same bookkeeping runs at the rack (ToR) level.
  double pending_others = p.pending_uplink_mbps(host);
  const std::uint32_t rack = datacenter.host(host).rack;
  double rack_now = 0.0;
  double rack_pending_others = p.pending_rack_uplink_mbps(rack);

  // Unplaced neighbors are priced with aggregate co-location accounting:
  // they are packed (largest pipe first, mirroring the estimate procedure's
  // bandwidth sort) into the host's residual capacity, and whatever does
  // not fit is charged as a remote pipe.  Checking each neighbor against
  // the full residual independently would let a filling host look free for
  // all of them at once.
  topo::Resources residual =
      p.available(host) - topology.node(node).requirements;
  std::vector<const topo::Neighbor*> future;

  for (const auto& nb : topology.neighbors(node)) {
    const dc::HostId other = p.host_of(nb.node);
    if (other != dc::kInvalidHost) {
      const dc::Scope scope = datacenter.scope_between(host, other);
      est.ubw += Objective::edge_cost(nb.bandwidth_mbps, scope);
      if (scope != dc::Scope::kSameHost) {
        uplink_now += nb.bandwidth_mbps;
      } else {
        pending_others = std::max(0.0, pending_others - nb.bandwidth_mbps);
      }
      if (scope != dc::Scope::kSameHost && scope != dc::Scope::kSameRack) {
        rack_now += nb.bandwidth_mbps;
      } else {
        rack_pending_others =
            std::max(0.0, rack_pending_others - nb.bandwidth_mbps);
      }
    } else {
      future.push_back(&nb);
    }
  }
  std::sort(future.begin(), future.end(),
            [](const topo::Neighbor* a, const topo::Neighbor* b) {
              if (a->bandwidth_mbps != b->bandwidth_mbps) {
                return a->bandwidth_mbps > b->bandwidth_mbps;
              }
              return a->node < b->node;
            });
  // Seat-stealing penalty: only one member of a host-level zone can sit on
  // this host.  If an unplaced zone-mate is attracted here by a stronger
  // pipe than the node's own co-location benefit, placing the node here
  // would displace that mate to >= one rack away; charge the displacement.
  double own_bw_here = 0.0;
  for (const auto& nb : topology.neighbors(node)) {
    if (p.host_of(nb.node) == host) own_bw_here += nb.bandwidth_mbps;
  }
  double displaced_bw = 0.0;
  for (const auto zone_index : topology.zones_of(node)) {
    const auto& zone = topology.zones()[zone_index];
    if (zone.level != topo::DiversityLevel::kHost) continue;
    for (const topo::NodeId mate : zone.members) {
      if (mate == node || p.is_placed(mate)) continue;
      double attracted = 0.0;
      for (const auto& mate_nb : topology.neighbors(mate)) {
        if (p.host_of(mate_nb.node) == host) {
          attracted += mate_nb.bandwidth_mbps;
        }
      }
      if (attracted > own_bw_here) {
        displaced_bw = std::max(displaced_bw, attracted - own_bw_here);
      }
    }
  }
  est.ubw += dc::hop_count(dc::Scope::kSameRack) * displaced_bw;

  std::vector<topo::NodeId> assumed;  // future neighbors assumed co-located
  for (const topo::Neighbor* nb : future) {
    // Zone members already placed may forbid the host, the pair itself may
    // be co-zoned, or the remaining residual may be too small.
    dc::Scope scope = p.zone_scope_to_host(nb->node, host);
    if (const auto level = topology.required_separation(node, nb->node)) {
      scope = std::max(scope, forced_scope(*level));
    }
    // (c) A zone conflict with a neighbor already assumed onto this host.
    if (scope == dc::Scope::kSameHost) {
      for (const topo::NodeId earlier : assumed) {
        if (topology.required_separation(nb->node, earlier)) {
          scope = dc::Scope::kSameRack;
          break;
        }
      }
    }
    // (d) An unplaced zone-mate that this host attracts at least as
    // strongly (a pipe of >= bandwidth to one of its residents) will claim
    // the co-location slot instead: packing residents here would force the
    // zone apart (the Figure 4 situation).
    if (scope == dc::Scope::kSameHost) {
      bool claimed = false;
      for (const auto zone_index : topology.zones_of(nb->node)) {
        const auto& zone = topology.zones()[zone_index];
        if (zone.level != topo::DiversityLevel::kHost) continue;
        for (const topo::NodeId mate : zone.members) {
          if (mate == nb->node || mate == node) continue;
          if (p.is_placed(mate)) continue;
          for (const auto& mate_nb : topology.neighbors(mate)) {
            if (p.host_of(mate_nb.node) == host &&
                mate_nb.bandwidth_mbps >= nb->bandwidth_mbps) {
              claimed = true;
              break;
            }
          }
          if (claimed) break;
        }
        if (claimed) break;
      }
      if (claimed) scope = dc::Scope::kSameRack;
    }
    const topo::Resources& req = topology.node(nb->node).requirements;
    if (scope == dc::Scope::kSameHost && req.fits_within(residual)) {
      residual -= req;  // assume co-located for the *cost* estimate
      assumed.push_back(nb->node);
    } else {
      scope = std::max(scope, dc::Scope::kSameRack);
    }
    // The *risk* screen is pessimistic: the search may well place this
    // neighbor elsewhere, so its bandwidth is counted against the uplink
    // regardless of whether it could co-locate.
    uplink_future += nb->bandwidth_mbps;
    est.ubw += Objective::edge_cost(nb->bandwidth_mbps, scope);
  }

  // Feasibility-risk screen: a greedy search cannot backtrack, so a host
  // whose uplink cannot carry its residents' not-yet-placed pipes becomes a
  // dead end several placements later.  Requiring
  //   now + future + pending(other residents) <= available
  // maintains the invariant available(h) >= pending(h) on every host (a
  // resolved pipe reduces both sides equally), which keeps every individual
  // remaining pipe routable.  Violators are charged the worst-case
  // bandwidth so they lose to any candidate with headroom; when every host
  // violates (pipes larger than any uplink), the relative order is
  // unchanged and EG degrades gracefully.
  if (uplink_now + uplink_future + pending_others >
      p.link_available(datacenter.host_link(host)) + 1e-9) {
    est.ubw += p.objective().ubw_worst();
  }
  // Same screen one level up: the node's remote pipes plus every rack
  // resident's not-yet-placed pipes must fit the ToR uplink.
  if (rack_now + uplink_future + rack_pending_others >
      p.link_available(datacenter.rack_link(rack)) + 1e-9) {
    est.ubw += p.objective().ubw_worst();
  }
  return est;
}

NodeEstimateContext::NodeEstimateContext(const PartialPlacement& p,
                                         topo::NodeId node, double rest)
    : p_(&p),
      topology_(&p.topology()),
      datacenter_(&p.datacenter()),
      node_(node),
      rest_(rest),
      requirements_(p.topology().node(node).requirements) {
  const topo::AppTopology& topology = *topology_;

  // Partition the neighbors.  placed_ keeps the original neighbor order so
  // estimate() feeds each accumulator (ubw, uplink_now, pending deductions)
  // the same addition sequence candidate_estimate does; future_ gets the
  // estimate's packing order.
  std::vector<const topo::Neighbor*> future;
  for (const auto& nb : topology.neighbors(node)) {
    const dc::HostId other = p.host_of(nb.node);
    if (other != dc::kInvalidHost) {
      placed_.push_back({other, nb.bandwidth_mbps});
      // own_bw_here: summed per host in the same neighbor order the
      // reference scan adds them.
      bool found = false;
      for (auto& [host, bw] : own_bw_) {
        if (host == other) {
          bw += nb.bandwidth_mbps;
          found = true;
          break;
        }
      }
      if (!found) own_bw_.emplace_back(other, nb.bandwidth_mbps);
    } else {
      future.push_back(&nb);
    }
  }
  std::sort(future.begin(), future.end(),
            [](const topo::Neighbor* a, const topo::Neighbor* b) {
              if (a->bandwidth_mbps != b->bandwidth_mbps) {
                return a->bandwidth_mbps > b->bandwidth_mbps;
              }
              return a->node < b->node;
            });

  // Seat-stealing attraction: for every unplaced host-level zone-mate of
  // the node, its pipes to residents summed per host (mate neighbor order),
  // then the per-host maximum over mates.  displaced_bw for a candidate is
  // max_attraction > own ? max_attraction - own : 0 — identical to the
  // reference's running max of (attracted - own) because subtracting the
  // same own preserves the FP ordering.
  std::vector<std::pair<dc::HostId, double>> attracted;
  for (const auto zone_index : topology.zones_of(node)) {
    const auto& zone = topology.zones()[zone_index];
    if (zone.level != topo::DiversityLevel::kHost) continue;
    for (const topo::NodeId mate : zone.members) {
      if (mate == node || p.is_placed(mate)) continue;
      attracted.clear();
      for (const auto& mate_nb : topology.neighbors(mate)) {
        const dc::HostId mate_host = p.host_of(mate_nb.node);
        if (mate_host == dc::kInvalidHost) continue;
        bool found = false;
        for (auto& [host, bw] : attracted) {
          if (host == mate_host) {
            bw += mate_nb.bandwidth_mbps;
            found = true;
            break;
          }
        }
        if (!found) attracted.emplace_back(mate_host, mate_nb.bandwidth_mbps);
      }
      for (const auto& [host, bw] : attracted) {
        bool found = false;
        for (auto& [seen, best] : attraction_) {
          if (seen == host) {
            best = std::max(best, bw);
            found = true;
            break;
          }
        }
        if (!found) attraction_.emplace_back(host, bw);
      }
    }
  }

  // Future-neighbor invariants: the host-independent forced scope, the
  // placed zone members constraining zone_scope_to_host, and the claim
  // table for check (d).
  future_.reserve(future.size());
  for (const topo::Neighbor* nb : future) {
    FutureNeighbor f;
    f.node = nb->node;
    f.bandwidth_mbps = nb->bandwidth_mbps;
    f.requirements = topology.node(nb->node).requirements;
    if (const auto level = topology.required_separation(node, nb->node)) {
      f.forced = forced_scope(*level);
    }
    for (const auto zone_index : topology.zones_of(nb->node)) {
      const auto& zone = topology.zones()[zone_index];
      for (const topo::NodeId member : zone.members) {
        if (member == nb->node) continue;
        const dc::HostId member_host = p.host_of(member);
        if (member_host == dc::kInvalidHost) continue;
        f.zone_members.emplace_back(member_host, zone.level);
      }
      // Claim check (d) considers host-level zones only: an unplaced mate
      // with a pipe to a resident of the candidate at least as strong as
      // this neighbor's pipe claims the co-location seat.  Existence of
      // such a pipe == (max pipe into that host) >= threshold.
      if (zone.level != topo::DiversityLevel::kHost) continue;
      for (const topo::NodeId mate : zone.members) {
        if (mate == nb->node || mate == node || p.is_placed(mate)) continue;
        for (const auto& mate_nb : topology.neighbors(mate)) {
          const dc::HostId mate_host = p.host_of(mate_nb.node);
          if (mate_host == dc::kInvalidHost) continue;
          bool found = false;
          for (auto& [host, best] : f.mate_claim) {
            if (host == mate_host) {
              best = std::max(best, mate_nb.bandwidth_mbps);
              found = true;
              break;
            }
          }
          if (!found) {
            f.mate_claim.emplace_back(mate_host, mate_nb.bandwidth_mbps);
          }
        }
      }
    }
    future_.push_back(std::move(f));
  }

  // Pairwise zone separation between future neighbors, for the
  // assumed-conflict check (c).
  const std::size_t n = future_.size();
  sep_.assign(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (topology.required_separation(future_[i].node, future_[j].node)) {
        sep_[i * n + j] = 1;
        sep_[j * n + i] = 1;
      }
    }
  }
}

double NodeEstimateContext::lookup(
    const std::vector<std::pair<dc::HostId, double>>& table, dc::HostId host) {
  for (const auto& [seen, value] : table) {
    if (seen == host) return value;
  }
  return 0.0;
}

Estimate NodeEstimateContext::estimate(dc::HostId host,
                                       EstimateScratch& scratch) const {
  static util::metrics::Counter& m_estimates =
      util::metrics::counter("estimator.candidate_estimates");
  m_estimates.inc();
  const PartialPlacement& p = *p_;
  const dc::DataCenter& datacenter = *datacenter_;

  Estimate est;
  est.ubw = rest_;
  est.uc = p.is_active(host) ? 0.0 : 1.0;

  double uplink_now = 0.0;
  double uplink_future = 0.0;
  double pending_others = p.pending_uplink_mbps(host);
  const std::uint32_t rack = datacenter.ancestors(host).rack;
  double rack_now = 0.0;
  double rack_pending_others = p.pending_rack_uplink_mbps(rack);

  topo::Resources residual = p.available(host) - requirements_;

  for (const PlacedNeighbor& nb : placed_) {
    const dc::Scope scope = datacenter.scope_between(host, nb.host);
    est.ubw += Objective::edge_cost(nb.bandwidth_mbps, scope);
    if (scope != dc::Scope::kSameHost) {
      uplink_now += nb.bandwidth_mbps;
    } else {
      pending_others = std::max(0.0, pending_others - nb.bandwidth_mbps);
    }
    if (scope != dc::Scope::kSameHost && scope != dc::Scope::kSameRack) {
      rack_now += nb.bandwidth_mbps;
    } else {
      rack_pending_others =
          std::max(0.0, rack_pending_others - nb.bandwidth_mbps);
    }
  }

  const double own_bw_here = lookup(own_bw_, host);
  const double attraction = lookup(attraction_, host);
  const double displaced_bw =
      attraction > own_bw_here ? attraction - own_bw_here : 0.0;
  est.ubw += dc::hop_count(dc::Scope::kSameRack) * displaced_bw;

  scratch.assumed.clear();
  const std::size_t n = future_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const FutureNeighbor& nb = future_[i];
    dc::Scope scope = nb.forced;
    for (const auto& [member_host, level] : nb.zone_members) {
      if (!datacenter.separated_at(host, member_host, level)) {
        scope = std::max(scope, forced_scope(level));
      }
    }
    if (scope == dc::Scope::kSameHost) {
      for (const std::uint32_t earlier : scratch.assumed) {
        if (sep_[i * n + earlier] != 0) {
          scope = dc::Scope::kSameRack;
          break;
        }
      }
    }
    if (scope == dc::Scope::kSameHost &&
        lookup(nb.mate_claim, host) >= nb.bandwidth_mbps) {
      scope = dc::Scope::kSameRack;
    }
    if (scope == dc::Scope::kSameHost &&
        nb.requirements.fits_within(residual)) {
      residual -= nb.requirements;
      scratch.assumed.push_back(static_cast<std::uint32_t>(i));
    } else {
      scope = std::max(scope, dc::Scope::kSameRack);
    }
    uplink_future += nb.bandwidth_mbps;
    est.ubw += Objective::edge_cost(nb.bandwidth_mbps, scope);
  }

  if (uplink_now + uplink_future + pending_others >
      p.link_available(datacenter.host_link(host)) + 1e-9) {
    est.ubw += p.objective().ubw_worst();
  }
  if (rack_now + uplink_future + rack_pending_others >
      p.link_available(datacenter.rack_link(rack)) + 1e-9) {
    est.ubw += p.objective().ubw_worst();
  }
  return est;
}

Estimate Estimator::imaginary_completion(const PartialPlacement& p) {
  static util::metrics::Counter& m_completions =
      util::metrics::counter("estimator.imaginary_completions");
  m_completions.inc();
  const topo::AppTopology& topology = p.topology();
  const dc::DataCenter& datacenter = p.datacenter();

  // Remaining nodes, sorted by bandwidth requirement (descending) as the
  // paper prescribes, so heavily connected nodes grab co-location first.
  std::vector<topo::NodeId> remaining;
  for (const auto& n : topology.nodes()) {
    if (!p.is_placed(n.id)) remaining.push_back(n.id);
  }
  std::sort(remaining.begin(), remaining.end(),
            [&](topo::NodeId a, topo::NodeId b) {
              const double bwa = topology.incident_bandwidth(a);
              const double bwb = topology.incident_bandwidth(b);
              if (bwa != bwb) return bwa > bwb;
              return a < b;
            });

  // Working hosts: the real hosts H* already used by p, then imaginary
  // hosts appended as the procedure creates them.
  std::vector<WorkHost> hosts;
  std::vector<Location> location(topology.node_count());
  for (const dc::HostId used : p.used_hosts()) {
    WorkHost wh;
    wh.location = {Location::Kind::kReal, used};
    wh.residual = p.available(used);
    hosts.push_back(std::move(wh));
  }
  for (const auto& n : topology.nodes()) {
    if (!p.is_placed(n.id)) continue;
    location[n.id] = {Location::Kind::kReal, p.host_of(n.id)};
    for (auto& wh : hosts) {
      if (wh.location.index == p.host_of(n.id)) {
        wh.nodes.push_back(n.id);
        break;
      }
    }
  }

  const auto zone_conflict = [&](topo::NodeId v, const WorkHost& wh) {
    // Host-level check against everything on the working host; for real
    // hosts additionally the full placed-member zone check at all levels.
    for (const topo::NodeId resident : wh.nodes) {
      if (topology.required_separation(v, resident)) return true;
    }
    if (wh.location.kind == Location::Kind::kReal) {
      if (p.zone_scope_to_host(v, wh.location.index) != dc::Scope::kSameHost) {
        return true;
      }
    }
    return false;
  };

  for (const topo::NodeId v : remaining) {
    const topo::Resources& req = topology.node(v).requirements;

    double best_bw = -1.0;
    std::size_t best_index = hosts.size();
    double bw_unassigned = 0.0;
    for (const auto& nb : topology.neighbors(v)) {
      if (!location[nb.node].assigned()) bw_unassigned += nb.bandwidth_mbps;
    }
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      const WorkHost& wh = hosts[h];
      if (!req.fits_within(wh.residual)) continue;  // condition 1
      if (zone_conflict(v, wh)) continue;           // condition 2
      double bw_here = 0.0;
      for (const auto& nb : topology.neighbors(v)) {
        const Location& loc = location[nb.node];
        if (loc.assigned() && loc.same_as(wh.location)) {
          bw_here += nb.bandwidth_mbps;
        }
      }
      if (bw_here > best_bw) {
        best_bw = bw_here;
        best_index = h;
      }
    }

    // Conditions 1-4 of Section III-A-2: open a fresh imaginary host when
    // nothing fits, nothing is connected, or the node is more strongly
    // connected to the still-unplaced tail than to any used host.
    const bool need_imaginary = best_index == hosts.size() ||
                                best_bw <= 0.0 || bw_unassigned > best_bw;
    if (need_imaginary) {
      WorkHost wh;
      wh.location = {Location::Kind::kImaginary,
                     static_cast<std::uint32_t>(hosts.size())};
      wh.residual = datacenter.max_host_capacity();
      hosts.push_back(std::move(wh));
      best_index = hosts.size() - 1;
    }
    WorkHost& chosen = hosts[best_index];
    chosen.residual -= req;
    chosen.nodes.push_back(v);
    location[v] = chosen.location;
  }

  // Estimated bandwidth: every pipe not already committed in p, priced by
  // the separation of the (approximate) locations — actual scope for two
  // real hosts, otherwise the diversity-forced minimum (at least one rack
  // apart, since the locations are distinct).
  Estimate est;
  for (const auto& edge : topology.edges()) {
    if (p.is_placed(edge.a) && p.is_placed(edge.b)) continue;  // committed
    const Location& la = location[edge.a];
    const Location& lb = location[edge.b];
    if (la.same_as(lb)) continue;
    dc::Scope scope = dc::Scope::kSameRack;
    if (la.kind == Location::Kind::kReal &&
        lb.kind == Location::Kind::kReal) {
      scope = datacenter.scope_between(la.index, lb.index);
    } else if (const auto level =
                   topology.required_separation(edge.a, edge.b)) {
      scope = std::max(scope, forced_scope(*level));
    }
    est.ubw += Objective::edge_cost(edge.bandwidth_mbps, scope);
  }
  // Imaginary hosts do not count toward u_c (Section III-A-2) and the real
  // hosts H* are active by construction, so the estimate never adds
  // activations.
  est.uc = 0.0;
  return est;
}

}  // namespace ostro::core
