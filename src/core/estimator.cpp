#include "core/estimator.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/metrics.h"

namespace ostro::core {
namespace {

[[nodiscard]] dc::Scope forced_scope(topo::DiversityLevel level) noexcept {
  switch (level) {
    case topo::DiversityLevel::kHost: return dc::Scope::kSameRack;
    case topo::DiversityLevel::kRack: return dc::Scope::kSamePod;
    case topo::DiversityLevel::kPod: return dc::Scope::kSameSite;
    case topo::DiversityLevel::kDatacenter: return dc::Scope::kCrossSite;
  }
  return dc::Scope::kSameRack;
}

/// Where a node sits during the imaginary completion: a real host, an
/// imaginary host, or nowhere yet.
struct Location {
  enum class Kind : std::uint8_t { kNone, kReal, kImaginary } kind = Kind::kNone;
  std::uint32_t index = 0;  ///< HostId or imaginary-host index

  [[nodiscard]] bool assigned() const noexcept { return kind != Kind::kNone; }
  [[nodiscard]] bool same_as(const Location& o) const noexcept {
    return kind == o.kind && index == o.index && assigned();
  }
};

struct WorkHost {
  Location location;
  topo::Resources residual;
  std::vector<topo::NodeId> nodes;
};

}  // namespace

double Estimator::rest_bound(const PartialPlacement& p, topo::NodeId node) {
  double incident = 0.0;
  for (const auto& nb : p.topology().neighbors(node)) {
    incident += p.edge_bound(nb.edge_index);
  }
  return p.remaining_bw_bound() - incident;
}

Estimate Estimator::candidate_estimate(const PartialPlacement& p,
                                       topo::NodeId node, dc::HostId host,
                                       double rest) {
  static util::metrics::Counter& m_estimates =
      util::metrics::counter("estimator.candidate_estimates");
  m_estimates.inc();
  const topo::AppTopology& topology = p.topology();
  const dc::DataCenter& datacenter = p.datacenter();

  Estimate est;
  est.ubw = rest;
  est.uc = p.is_active(host) ? 0.0 : 1.0;

  // Bandwidth the node's pipes will put on the candidate host's uplink:
  // committed now (placed neighbors off-host) plus the future remote pipes
  // (unplaced neighbors that will not fit next to the node here).
  double uplink_now = 0.0;
  double uplink_future = 0.0;
  // Other residents' pipes to unplaced nodes also compete for this uplink;
  // pipes from residents to `node` itself resolve on co-location, so they
  // are deducted below.  The same bookkeeping runs at the rack (ToR) level.
  double pending_others = p.pending_uplink_mbps(host);
  const std::uint32_t rack = datacenter.host(host).rack;
  double rack_now = 0.0;
  double rack_pending_others = p.pending_rack_uplink_mbps(rack);

  // Unplaced neighbors are priced with aggregate co-location accounting:
  // they are packed (largest pipe first, mirroring the estimate procedure's
  // bandwidth sort) into the host's residual capacity, and whatever does
  // not fit is charged as a remote pipe.  Checking each neighbor against
  // the full residual independently would let a filling host look free for
  // all of them at once.
  topo::Resources residual =
      p.available(host) - topology.node(node).requirements;
  std::vector<const topo::Neighbor*> future;

  for (const auto& nb : topology.neighbors(node)) {
    const dc::HostId other = p.host_of(nb.node);
    if (other != dc::kInvalidHost) {
      const dc::Scope scope = datacenter.scope_between(host, other);
      est.ubw += Objective::edge_cost(nb.bandwidth_mbps, scope);
      if (scope != dc::Scope::kSameHost) {
        uplink_now += nb.bandwidth_mbps;
      } else {
        pending_others = std::max(0.0, pending_others - nb.bandwidth_mbps);
      }
      if (scope != dc::Scope::kSameHost && scope != dc::Scope::kSameRack) {
        rack_now += nb.bandwidth_mbps;
      } else {
        rack_pending_others =
            std::max(0.0, rack_pending_others - nb.bandwidth_mbps);
      }
    } else {
      future.push_back(&nb);
    }
  }
  std::sort(future.begin(), future.end(),
            [](const topo::Neighbor* a, const topo::Neighbor* b) {
              if (a->bandwidth_mbps != b->bandwidth_mbps) {
                return a->bandwidth_mbps > b->bandwidth_mbps;
              }
              return a->node < b->node;
            });
  // Seat-stealing penalty: only one member of a host-level zone can sit on
  // this host.  If an unplaced zone-mate is attracted here by a stronger
  // pipe than the node's own co-location benefit, placing the node here
  // would displace that mate to >= one rack away; charge the displacement.
  double own_bw_here = 0.0;
  for (const auto& nb : topology.neighbors(node)) {
    if (p.host_of(nb.node) == host) own_bw_here += nb.bandwidth_mbps;
  }
  double displaced_bw = 0.0;
  for (const auto zone_index : topology.zones_of(node)) {
    const auto& zone = topology.zones()[zone_index];
    if (zone.level != topo::DiversityLevel::kHost) continue;
    for (const topo::NodeId mate : zone.members) {
      if (mate == node || p.is_placed(mate)) continue;
      double attracted = 0.0;
      for (const auto& mate_nb : topology.neighbors(mate)) {
        if (p.host_of(mate_nb.node) == host) {
          attracted += mate_nb.bandwidth_mbps;
        }
      }
      if (attracted > own_bw_here) {
        displaced_bw = std::max(displaced_bw, attracted - own_bw_here);
      }
    }
  }
  est.ubw += dc::hop_count(dc::Scope::kSameRack) * displaced_bw;

  std::vector<topo::NodeId> assumed;  // future neighbors assumed co-located
  for (const topo::Neighbor* nb : future) {
    // Zone members already placed may forbid the host, the pair itself may
    // be co-zoned, or the remaining residual may be too small.
    dc::Scope scope = p.zone_scope_to_host(nb->node, host);
    if (const auto level = topology.required_separation(node, nb->node)) {
      scope = std::max(scope, forced_scope(*level));
    }
    // (c) A zone conflict with a neighbor already assumed onto this host.
    if (scope == dc::Scope::kSameHost) {
      for (const topo::NodeId earlier : assumed) {
        if (topology.required_separation(nb->node, earlier)) {
          scope = dc::Scope::kSameRack;
          break;
        }
      }
    }
    // (d) An unplaced zone-mate that this host attracts at least as
    // strongly (a pipe of >= bandwidth to one of its residents) will claim
    // the co-location slot instead: packing residents here would force the
    // zone apart (the Figure 4 situation).
    if (scope == dc::Scope::kSameHost) {
      bool claimed = false;
      for (const auto zone_index : topology.zones_of(nb->node)) {
        const auto& zone = topology.zones()[zone_index];
        if (zone.level != topo::DiversityLevel::kHost) continue;
        for (const topo::NodeId mate : zone.members) {
          if (mate == nb->node || mate == node) continue;
          if (p.is_placed(mate)) continue;
          for (const auto& mate_nb : topology.neighbors(mate)) {
            if (p.host_of(mate_nb.node) == host &&
                mate_nb.bandwidth_mbps >= nb->bandwidth_mbps) {
              claimed = true;
              break;
            }
          }
          if (claimed) break;
        }
        if (claimed) break;
      }
      if (claimed) scope = dc::Scope::kSameRack;
    }
    const topo::Resources& req = topology.node(nb->node).requirements;
    if (scope == dc::Scope::kSameHost && req.fits_within(residual)) {
      residual -= req;  // assume co-located for the *cost* estimate
      assumed.push_back(nb->node);
    } else {
      scope = std::max(scope, dc::Scope::kSameRack);
    }
    // The *risk* screen is pessimistic: the search may well place this
    // neighbor elsewhere, so its bandwidth is counted against the uplink
    // regardless of whether it could co-locate.
    uplink_future += nb->bandwidth_mbps;
    est.ubw += Objective::edge_cost(nb->bandwidth_mbps, scope);
  }

  // Feasibility-risk screen: a greedy search cannot backtrack, so a host
  // whose uplink cannot carry its residents' not-yet-placed pipes becomes a
  // dead end several placements later.  Requiring
  //   now + future + pending(other residents) <= available
  // maintains the invariant available(h) >= pending(h) on every host (a
  // resolved pipe reduces both sides equally), which keeps every individual
  // remaining pipe routable.  Violators are charged the worst-case
  // bandwidth so they lose to any candidate with headroom; when every host
  // violates (pipes larger than any uplink), the relative order is
  // unchanged and EG degrades gracefully.
  if (uplink_now + uplink_future + pending_others >
      p.link_available(datacenter.host_link(host)) + 1e-9) {
    est.ubw += p.objective().ubw_worst();
  }
  // Same screen one level up: the node's remote pipes plus every rack
  // resident's not-yet-placed pipes must fit the ToR uplink.
  if (rack_now + uplink_future + rack_pending_others >
      p.link_available(datacenter.rack_link(rack)) + 1e-9) {
    est.ubw += p.objective().ubw_worst();
  }
  return est;
}

Estimate Estimator::imaginary_completion(const PartialPlacement& p) {
  static util::metrics::Counter& m_completions =
      util::metrics::counter("estimator.imaginary_completions");
  m_completions.inc();
  const topo::AppTopology& topology = p.topology();
  const dc::DataCenter& datacenter = p.datacenter();

  // Remaining nodes, sorted by bandwidth requirement (descending) as the
  // paper prescribes, so heavily connected nodes grab co-location first.
  std::vector<topo::NodeId> remaining;
  for (const auto& n : topology.nodes()) {
    if (!p.is_placed(n.id)) remaining.push_back(n.id);
  }
  std::sort(remaining.begin(), remaining.end(),
            [&](topo::NodeId a, topo::NodeId b) {
              const double bwa = topology.incident_bandwidth(a);
              const double bwb = topology.incident_bandwidth(b);
              if (bwa != bwb) return bwa > bwb;
              return a < b;
            });

  // Working hosts: the real hosts H* already used by p, then imaginary
  // hosts appended as the procedure creates them.
  std::vector<WorkHost> hosts;
  std::vector<Location> location(topology.node_count());
  for (const dc::HostId used : p.used_hosts()) {
    WorkHost wh;
    wh.location = {Location::Kind::kReal, used};
    wh.residual = p.available(used);
    hosts.push_back(std::move(wh));
  }
  for (const auto& n : topology.nodes()) {
    if (!p.is_placed(n.id)) continue;
    location[n.id] = {Location::Kind::kReal, p.host_of(n.id)};
    for (auto& wh : hosts) {
      if (wh.location.index == p.host_of(n.id)) {
        wh.nodes.push_back(n.id);
        break;
      }
    }
  }

  const auto zone_conflict = [&](topo::NodeId v, const WorkHost& wh) {
    // Host-level check against everything on the working host; for real
    // hosts additionally the full placed-member zone check at all levels.
    for (const topo::NodeId resident : wh.nodes) {
      if (topology.required_separation(v, resident)) return true;
    }
    if (wh.location.kind == Location::Kind::kReal) {
      if (p.zone_scope_to_host(v, wh.location.index) != dc::Scope::kSameHost) {
        return true;
      }
    }
    return false;
  };

  for (const topo::NodeId v : remaining) {
    const topo::Resources& req = topology.node(v).requirements;

    double best_bw = -1.0;
    std::size_t best_index = hosts.size();
    double bw_unassigned = 0.0;
    for (const auto& nb : topology.neighbors(v)) {
      if (!location[nb.node].assigned()) bw_unassigned += nb.bandwidth_mbps;
    }
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      const WorkHost& wh = hosts[h];
      if (!req.fits_within(wh.residual)) continue;  // condition 1
      if (zone_conflict(v, wh)) continue;           // condition 2
      double bw_here = 0.0;
      for (const auto& nb : topology.neighbors(v)) {
        const Location& loc = location[nb.node];
        if (loc.assigned() && loc.same_as(wh.location)) {
          bw_here += nb.bandwidth_mbps;
        }
      }
      if (bw_here > best_bw) {
        best_bw = bw_here;
        best_index = h;
      }
    }

    // Conditions 1-4 of Section III-A-2: open a fresh imaginary host when
    // nothing fits, nothing is connected, or the node is more strongly
    // connected to the still-unplaced tail than to any used host.
    const bool need_imaginary = best_index == hosts.size() ||
                                best_bw <= 0.0 || bw_unassigned > best_bw;
    if (need_imaginary) {
      WorkHost wh;
      wh.location = {Location::Kind::kImaginary,
                     static_cast<std::uint32_t>(hosts.size())};
      wh.residual = datacenter.max_host_capacity();
      hosts.push_back(std::move(wh));
      best_index = hosts.size() - 1;
    }
    WorkHost& chosen = hosts[best_index];
    chosen.residual -= req;
    chosen.nodes.push_back(v);
    location[v] = chosen.location;
  }

  // Estimated bandwidth: every pipe not already committed in p, priced by
  // the separation of the (approximate) locations — actual scope for two
  // real hosts, otherwise the diversity-forced minimum (at least one rack
  // apart, since the locations are distinct).
  Estimate est;
  for (const auto& edge : topology.edges()) {
    if (p.is_placed(edge.a) && p.is_placed(edge.b)) continue;  // committed
    const Location& la = location[edge.a];
    const Location& lb = location[edge.b];
    if (la.same_as(lb)) continue;
    dc::Scope scope = dc::Scope::kSameRack;
    if (la.kind == Location::Kind::kReal &&
        lb.kind == Location::Kind::kReal) {
      scope = datacenter.scope_between(la.index, lb.index);
    } else if (const auto level =
                   topology.required_separation(edge.a, edge.b)) {
      scope = std::max(scope, forced_scope(*level));
    }
    est.ubw += Objective::edge_cost(edge.bandwidth_mbps, scope);
  }
  // Imaginary hosts do not count toward u_c (Section III-A-2) and the real
  // hosts H* are active by construction, so the estimate never adds
  // activations.
  est.uc = 0.0;
  return est;
}

}  // namespace ostro::core
