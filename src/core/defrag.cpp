#include "core/defrag.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/verify.h"
#include "datacenter/state_delta.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::core {

namespace {

/// One stack node currently sitting on a vacate-candidate host.
struct Resident {
  std::size_t stack = 0;  ///< index into the registry snapshot
  topo::NodeId node = 0;
};

struct RankedHost {
  dc::HostId host = dc::kInvalidHost;
  double load = 0.0;  ///< used vcpus + used mem_gb
};

}  // namespace

PlacementService::MigrationBatch DefragPlanner::plan_batch(
    const dc::Occupancy& snapshot) const {
  PlacementService::MigrationBatch batch;
  if (config_.max_moves == 0) return batch;
  const dc::DataCenter& datacenter = snapshot.datacenter();
  const std::vector<DeployedStack> stacks = registry_->snapshot();
  if (stacks.empty()) return batch;

  // Reverse map: which stack nodes sit on each host.  Registry and
  // occupancy snapshots are taken at slightly different instants; the
  // commit gate re-checks everything, so planning on them is safe.
  std::vector<std::vector<Resident>> residents(datacenter.host_count());
  for (std::size_t s = 0; s < stacks.size(); ++s) {
    for (topo::NodeId n = 0; n < stacks[s].assignment.size(); ++n) {
      const dc::HostId h = stacks[s].assignment[n];
      if (h < datacenter.host_count()) residents[h].push_back({s, n});
    }
  }

  // Vacate candidates: active hosts carrying few resident nodes and some
  // free capacity, emptiest first — freeing them costs the fewest moves per
  // reclaimed host.  (A packed-full host is never worth vacating: its free
  // capacity is zero, so emptying it just shuffles load.)
  std::vector<RankedHost> sources;
  for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
    const std::vector<Resident>& r = residents[h];
    if (r.empty() || r.size() > config_.max_resident_nodes) continue;
    if (!snapshot.is_active(h)) continue;
    if (snapshot.available(h).is_zero()) continue;
    const topo::Resources used = snapshot.used(h);
    sources.push_back({h, used.vcpus + used.mem_gb});
  }
  std::sort(sources.begin(), sources.end(),
            [](const RankedHost& a, const RankedHost& b) {
              return a.load != b.load ? a.load < b.load : a.host < b.host;
            });

  // Targets: every active host, densest first (reverse best-fit-decreasing:
  // pack remnants into already-committed hosts).  Sources ARE candidate
  // targets — a denser sparse host is a fine destination for an emptier
  // one's nodes — except hosts this batch already vacated, which must stay
  // empty (refilling them would undo the whole point).
  std::vector<RankedHost> targets;
  for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
    if (!snapshot.is_active(h)) continue;
    const topo::Resources used = snapshot.used(h);
    targets.push_back({h, used.vcpus + used.mem_gb});
  }
  std::sort(targets.begin(), targets.end(),
            [](const RankedHost& a, const RankedHost& b) {
              return a.load != b.load ? a.load > b.load : a.host < b.host;
            });
  if (targets.empty()) return batch;
  std::vector<char> vacated_hosts(datacenter.host_count(), 0);

  // Batch-wide budgets.
  std::uint32_t move_cap = config_.max_moves;
  if (config_.downtime_per_move_seconds > 0.0) {
    const double by_downtime = std::floor(config_.downtime_budget_seconds /
                                          config_.downtime_per_move_seconds);
    move_cap = std::min<std::uint32_t>(
        move_cap, by_downtime <= 0.0
                      ? 0
                      : static_cast<std::uint32_t>(by_downtime));
  }

  // Working state across the whole batch: one staging delta over the
  // snapshot (so later hosts see earlier hosts' planned moves) plus the
  // planned assignment of every touched stack.
  dc::OccupancyDelta delta(snapshot);
  std::vector<net::Assignment> planned(stacks.size());
  std::vector<char> claimed(stacks.size(), 0);
  std::uint32_t moves = 0;
  double moved_gb = 0.0;

  for (const RankedHost& source : sources) {
    const std::vector<Resident>& res = residents[source.host];
    if (moves + res.size() > move_cap) continue;
    double host_gb = 0.0;
    for (const Resident& r : res) {
      host_gb += stacks[r.stack].topology->node(r.node).requirements.mem_gb;
    }
    if (moved_gb + host_gb > config_.max_move_gb) continue;
    // One migration member per stack: a stack already touched by an
    // earlier vacated host is off-limits for this batch.
    bool stack_conflict = false;
    std::unordered_set<std::size_t> touched;
    for (const Resident& r : res) {
      if (claimed[r.stack]) stack_conflict = true;
      touched.insert(r.stack);
    }
    if (stack_conflict) continue;

    // All-or-nothing vacate attempt on copies of the working state.
    dc::OccupancyDelta attempt = delta;
    std::vector<std::pair<std::size_t, net::Assignment>> candidate;
    candidate.reserve(touched.size());
    for (const std::size_t s : touched) {
      candidate.emplace_back(s, stacks[s].assignment);
    }
    const auto assignment_of = [&](std::size_t s) -> net::Assignment& {
      for (auto& [idx, a] : candidate) {
        if (idx == s) return a;
      }
      return candidate.front().second;  // unreachable: every s is in touched
    };

    bool vacated = true;
    for (const Resident& r : res) {
      const topo::AppTopology& topology = *stacks[r.stack].topology;
      const topo::Node& node = topology.node(r.node);
      net::Assignment& working = assignment_of(r.stack);
      bool placed = false;
      for (const RankedHost& target : targets) {
        if (target.host == source.host || vacated_hosts[target.host]) continue;
        // Structure first (cheap, occupancy-independent): zones, affinity,
        // latency, tags must hold with the node tentatively on the target.
        const dc::HostId previous = working[r.node];
        working[r.node] = target.host;
        if (!verify_assignment_structure(datacenter, topology, working)
                 .empty()) {
          working[r.node] = previous;
          continue;
        }
        working[r.node] = previous;
        // Capacity and bandwidth via a trial delta: stage the relocation
        // and drop the trial wholesale if anything refuses.
        dc::OccupancyDelta trial = attempt;
        try {
          trial.remove_host_load(previous, node.requirements);
          trial.add_host_load(target.host, node.requirements);
          for (const topo::Neighbor& nb : topology.neighbors(r.node)) {
            const dc::PathLinks old_path =
                datacenter.path_between(previous, working[nb.node]);
            for (const dc::LinkId link : old_path) {
              trial.release_link(link, nb.bandwidth_mbps);
            }
            const dc::PathLinks new_path =
                datacenter.path_between(target.host, working[nb.node]);
            for (const dc::LinkId link : new_path) {
              trial.reserve_link(link, nb.bandwidth_mbps);
            }
          }
        } catch (const std::exception&) {
          continue;  // target full (or a path saturated): next target
        }
        attempt = std::move(trial);
        working[r.node] = target.host;
        placed = true;
        break;
      }
      if (!placed) {
        vacated = false;
        break;
      }
    }
    if (!vacated) continue;  // host skipped, working state untouched

    // Adopt the attempt: later source hosts plan on top of these moves.
    delta = std::move(attempt);
    vacated_hosts[source.host] = 1;
    for (auto& [s, assignment] : candidate) {
      claimed[s] = 1;
      planned[s] = std::move(assignment);
    }
    moves += static_cast<std::uint32_t>(res.size());
    moved_gb += host_gb;
    if (moves >= move_cap) break;
  }

  for (std::size_t s = 0; s < stacks.size(); ++s) {
    if (!claimed[s]) continue;
    PlacementService::MigrationMember member;
    member.stack_id = stacks[s].id;
    member.topology = stacks[s].topology;
    member.from = stacks[s].assignment;
    member.to = std::move(planned[s]);
    batch.members.push_back(std::move(member));
  }
  return batch;
}

DefragStats DefragPlanner::run_once() {
  static util::metrics::Counter& m_runs = util::metrics::counter("defrag.runs");
  static util::metrics::Counter& m_proposed =
      util::metrics::counter("defrag.moves_proposed");
  static util::metrics::Counter& m_committed =
      util::metrics::counter("defrag.moves_committed");
  static util::metrics::Counter& m_conflicts =
      util::metrics::counter("defrag.conflicts");
  static util::metrics::Counter& m_vacated =
      util::metrics::counter("defrag.hosts_vacated");
  static util::metrics::Counter& m_retries =
      util::metrics::counter("defrag.retries");
  static util::metrics::Summary& m_plan_seconds =
      util::metrics::summary("defrag.plan_seconds");
  static util::metrics::Summary& m_moved_gb =
      util::metrics::summary("defrag.moved_gb");
  m_runs.inc();

  DefragStats stats;
  for (std::uint32_t attempt = 0;; ++attempt) {
    PlacementService::MigrationBatch batch;
    {
      const util::metrics::ScopedTimer timer(m_plan_seconds);
      batch = plan_batch(service_->snapshot());
    }
    if (batch.members.empty()) break;

    std::unordered_set<dc::HostId> proposed_sources;
    for (const PlacementService::MigrationMember& member : batch.members) {
      for (std::size_t n = 0; n < member.from.size(); ++n) {
        if (member.from[n] != member.to[n]) {
          ++stats.moves_proposed;
          proposed_sources.insert(member.from[n]);
        }
      }
    }
    m_proposed.add(stats.moves_proposed);

    std::uint64_t epoch = 0;
    service_->try_commit_migration(batch, *registry_, &epoch);

    std::uint32_t committed_now = 0;
    std::uint32_t conflicts_now = 0;
    std::unordered_set<dc::HostId> vacated_sources;
    for (const PlacementService::MigrationMember& member : batch.members) {
      if (member.outcome == PlacementService::CommitOutcome::kCommitted) {
        ++stats.members_committed;
        ++committed_now;
        for (std::size_t n = 0; n < member.from.size(); ++n) {
          if (member.from[n] != member.to[n]) {
            ++stats.moves_committed;
            stats.moved_gb +=
                member.topology->node(static_cast<topo::NodeId>(n))
                    .requirements.mem_gb;
            vacated_sources.insert(member.from[n]);
          }
        }
      } else if (member.outcome ==
                 PlacementService::CommitOutcome::kConflict) {
        ++stats.conflicts;
        ++conflicts_now;
      }
    }
    if (committed_now > 0) {
      stats.commit_epoch = epoch;
      stats.hosts_vacated += static_cast<std::uint32_t>(vacated_sources.size());
      break;
    }
    if (conflicts_now == 0 || attempt >= config_.max_conflict_retries) break;
    ++stats.retries;
    m_retries.inc();
  }

  m_committed.add(stats.moves_committed);
  m_conflicts.add(stats.conflicts);
  m_vacated.add(stats.hosts_vacated);
  if (stats.moves_committed > 0) m_moved_gb.observe(stats.moved_gb);
  return stats;
}

}  // namespace ostro::core
