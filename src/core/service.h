// PlacementService — the concurrent front end of the placement core.
//
// OstroScheduler is a single-request facade: plan() reads the live
// occupancy, deploy() mutates it, and nothing can plan while a commit is in
// flight.  The service turns one scheduler into an online control plane
// that accepts placement requests from many threads, in the
// optimistic-concurrency shape of shared-state cluster schedulers
// (Borg/Omega): each request
//
//   1. *snapshots* the occupancy under a shared lock — a plain Occupancy
//      copy stamped with its mutation epoch (dc::Occupancy::version()),
//   2. *plans* against that snapshot with no lock held, so an arbitrarily
//      expensive BA*/DBA* search never blocks other planners or
//      committers,
//   3. *validates and commits* under the writer lock: when the live epoch
//      still equals the snapshot epoch nothing interleaved and the plan
//      commits directly; otherwise the placement is re-verified from first
//      principles (core::verify_placement — capacity, bandwidth, zones)
//      against the *current* occupancy before committing,
//   4. on a validation *conflict* (a competing commit consumed resources
//      this plan relies on), replans against a fresh snapshot, at most
//      SearchConfig::service_max_conflict_retries times, before returning
//      the placement uncommitted.
//
// Process-wide telemetry under "service.": counters service.requests /
// committed / conflicts / retries / rejected, summary
// service.commit_wait_seconds (time a request waited for the writer lock).
//
// Once a scheduler is wrapped by a service, all access must go through the
// service (or through the shared scheduler only while no service call is
// in flight): the service's locks protect exactly the call paths routed
// through it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/stack_registry.h"

namespace ostro::core {

/// A placement together with the occupancy epoch it was planned against.
/// The epoch is what makes staleness detectable at commit time.
struct PlannedPlacement {
  Placement placement;
  std::uint64_t epoch = 0;  ///< dc::Occupancy::version() of the snapshot
};

/// Outcome of one place()/place_with() request.
struct ServiceResult {
  /// The final placement; `committed` tells whether it was applied.
  Placement placement;
  std::uint32_t conflicts = 0;  ///< commit-gate validation failures seen
  std::uint32_t retries = 0;    ///< replans taken after conflicts
  /// Epoch of the snapshot behind the final placement.
  std::uint64_t plan_epoch = 0;
  /// Live occupancy epoch right after this request's commit (0 when
  /// nothing was committed).  Strictly increasing across commits, so it
  /// totally orders the committed set — a serial replay in commit_epoch
  /// order reproduces the service occupancy bit for bit.
  std::uint64_t commit_epoch = 0;
};

class PlacementService {
 public:
  /// What try_commit did with a planned placement.
  enum class CommitOutcome : std::uint8_t {
    kCommitted,  ///< validated (if stale) and applied
    kConflict,   ///< stale snapshot and re-validation failed: replan
    kRejected,   ///< never commitable: infeasible, bandwidth-overcommitted,
                 ///< or the caller's committer refused (deterministic, no
                 ///< retry)
  };

  /// Caller-supplied commit step, run *under the writer lock* after the
  /// re-validation gate passed (the Heat wrapper deploys through the
  /// simulated Heat engine here).  Must synchronously apply the placement
  /// to the scheduler's occupancy and return true, or leave it untouched,
  /// fill `failure`, and return false.  Must not call back into the
  /// service (the writer lock is held).
  using Committer =
      std::function<bool(const Placement& placement, std::string& failure)>;

  /// `scheduler` must outlive the service.
  explicit PlacementService(OstroScheduler& scheduler) noexcept
      : scheduler_(&scheduler) {}

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  [[nodiscard]] const dc::DataCenter& datacenter() const noexcept {
    return scheduler_->datacenter();
  }
  [[nodiscard]] const OstroScheduler& scheduler() const noexcept {
    return *scheduler_;
  }

  /// Current occupancy mutation epoch (shared lock).
  [[nodiscard]] std::uint64_t epoch() const;

  /// Root feasibility aggregate of the live occupancy (shared lock).  The
  /// ShardRouter scores shards from this without copying a snapshot.
  [[nodiscard]] dc::FeasibilityIndex::Aggregate root_aggregate() const;

  /// Writer-lock session for an external multi-service transaction (the
  /// ShardRouter's cross-shard two-phase commit): holds this service's
  /// exclusive lock for its lifetime and exposes the live occupancy for
  /// direct staged mutation.  Every other service call path blocks while a
  /// session is alive, so the holder is the sole mutator — keep it short,
  /// and never call back into the service while holding one.
  class ExclusiveSession {
   public:
    ExclusiveSession(ExclusiveSession&&) noexcept = default;
    ExclusiveSession& operator=(ExclusiveSession&&) noexcept = default;
    ExclusiveSession(const ExclusiveSession&) = delete;
    ExclusiveSession& operator=(const ExclusiveSession&) = delete;

    [[nodiscard]] dc::Occupancy& occupancy() noexcept {
      return scheduler_->occupancy();
    }

   private:
    friend class PlacementService;
    ExclusiveSession(std::unique_lock<std::shared_mutex> lock,
                     OstroScheduler& scheduler) noexcept
        : lock_(std::move(lock)), scheduler_(&scheduler) {}

    std::unique_lock<std::shared_mutex> lock_;
    OstroScheduler* scheduler_;
  };

  /// Acquires the writer lock and returns the session guarding it.
  [[nodiscard]] ExclusiveSession exclusive() {
    return {std::unique_lock<std::shared_mutex>(mutex_), *scheduler_};
  }

  /// Consistent copy of the live occupancy (shared lock held only for the
  /// copy).  Its version() carries the snapshot epoch.
  [[nodiscard]] dc::Occupancy snapshot() const;

  /// Steps 1–2 of the protocol: snapshot, then plan against it with no
  /// lock held.  Safe to call from any number of threads.
  [[nodiscard]] PlannedPlacement plan(const topo::AppTopology& topology,
                                      Algorithm algorithm) const;
  [[nodiscard]] PlannedPlacement plan(const topo::AppTopology& topology,
                                      Algorithm algorithm,
                                      const SearchConfig& config) const;

  /// Step 3: the validate-and-commit gate under the writer lock.  On
  /// kCommitted, `planned.placement.committed` is set and `commit_epoch`
  /// (when non-null) receives the post-commit epoch.  On kConflict the
  /// placement is untouched so the caller can inspect or replan.
  CommitOutcome try_commit(const topo::AppTopology& topology,
                           PlannedPlacement& planned,
                           std::uint64_t* commit_epoch = nullptr);
  CommitOutcome try_commit_with(const topo::AppTopology& topology,
                                PlannedPlacement& planned,
                                const Committer& committer,
                                std::uint64_t* commit_epoch = nullptr);

  /// One member of a batched commit (the StreamingService dispatcher).
  /// `topology`/`planned` are the inputs; `outcome`/`commit_epoch` are
  /// filled by try_commit_batch.  A null `committer` uses the default
  /// scheduler commit; a non-null one runs as the member's commit step
  /// under the writer lock (same contract as try_commit_with).
  struct BatchCommitMember {
    const topo::AppTopology* topology = nullptr;
    PlannedPlacement* planned = nullptr;
    const Committer* committer = nullptr;
    CommitOutcome outcome = CommitOutcome::kConflict;
    std::uint64_t commit_epoch = 0;
  };

  /// Batched step 3: validate-and-commit every member under ONE
  /// writer-lock acquisition, in batch order.  Members are typically
  /// planned against the same shared snapshot, so the first committable
  /// member takes the epoch fast path and every later member is
  /// re-verified against the occupancy as already mutated by its batch
  /// predecessors — intra-batch resource collisions surface as kConflict
  /// exactly like cross-request races, and the caller spills those members
  /// into the per-request conflict-replan ladder.  Returns the number of
  /// members committed.
  std::size_t try_commit_batch(std::span<BatchCommitMember> batch);

  /// The full request: plan → try_commit → bounded conflict-retry ladder.
  /// The returned placement has `committed` set iff it was applied;
  /// otherwise `failure_reason` says why (infeasible, overcommitted, or
  /// conflict ladder exhausted).
  ServiceResult place(const topo::AppTopology& topology, Algorithm algorithm);
  ServiceResult place(const topo::AppTopology& topology, Algorithm algorithm,
                      const SearchConfig& config);
  /// Same request shape with the caller's committer as the commit step
  /// (the plan→deploy path of the Heat wrapper, made atomic).
  ServiceResult place_with(const topo::AppTopology& topology,
                           Algorithm algorithm, const SearchConfig& config,
                           const Committer& committer);

  // ---- lifecycle entry points (departures, failures, migrations) ----
  //
  // Each runs entirely under the writer lock and sequences its occupancy
  // mutation with the paired StackRegistry update, so planners snapshotting
  // through this service never observe a stack whose resources are released
  // but whose registry record survives (or vice versa).  Lock order is
  // service-writer-lock -> registry-mutex, matching try_commit_migration.

  /// Releases a deployed stack: removes it from `registry` and releases its
  /// host loads and pipe bandwidth in one atomic batch
  /// (net::release_placement).  Returns false when the stack is not (or no
  /// longer) live — the double-release guard.  `commit_epoch` (when
  /// non-null) receives the post-release occupancy epoch; `released` (when
  /// non-null) receives the released record.
  bool release_stack(StackRegistry& registry, StackId id,
                     bool deactivate_emptied = true,
                     std::uint64_t* commit_epoch = nullptr,
                     DeployedStack* released = nullptr);

  /// Kills every stack resident on `host` (releasing all their resources,
  /// on every host they touch) and quarantines the host by consuming its
  /// entire remaining free capacity, so no planner can land new nodes on it.
  /// Returns the quarantined amount — pass it to repair_host to bring the
  /// host back.  `stacks_killed` (when non-null) receives the number of
  /// stacks released.
  topo::Resources fail_host(StackRegistry& registry, dc::HostId host,
                            std::size_t* stacks_killed = nullptr,
                            std::uint64_t* commit_epoch = nullptr);

  /// Reverses fail_host: releases the quarantine load and deactivates the
  /// host when it ends up idle.
  void repair_host(dc::HostId host, const topo::Resources& quarantine,
                   std::uint64_t* commit_epoch = nullptr);

  /// One planned stack relocation inside a MigrationBatch.  `from` must
  /// equal the stack's live assignment at commit time or the member is
  /// skipped as a conflict (a racing placement, departure, or migration
  /// invalidated the plan).
  struct MigrationMember {
    StackId stack_id = 0;
    std::shared_ptr<const topo::AppTopology> topology;
    net::Assignment from;
    net::Assignment to;
    /// Filled by try_commit_migration.
    CommitOutcome outcome = CommitOutcome::kConflict;
  };

  /// A bounded batch of relocations proposed by core::DefragPlanner.
  struct MigrationBatch {
    std::vector<MigrationMember> members;
  };

  /// Commits a migration batch under ONE writer-lock acquisition.  Per
  /// member, in batch order: re-check the stack is live with the expected
  /// assignment, re-validate the structural constraints of the target
  /// assignment, stage the relocation (release old loads/paths, reserve new
  /// ones) in one OccupancyDelta, flush it atomically, and swap the
  /// registry assignment.  A member whose stack moved on or whose target no
  /// longer fits becomes kConflict without disturbing the others —
  /// migrations race live placements exactly like competing placements race
  /// each other.  Capacity/bandwidth validation happens via the delta
  /// (which nets each member's own released resources against its new
  /// demand — verify_placement would double-count them), plus
  /// verify_assignment_structure for tags/zones/affinities/latency.
  /// Returns the number of members committed; `commit_epoch` (when
  /// non-null) receives the epoch after the last committed member (0 when
  /// none committed).
  std::size_t try_commit_migration(MigrationBatch& batch,
                                   StackRegistry& registry,
                                   std::uint64_t* commit_epoch = nullptr);

  /// Test instrumentation: invoked after each planning attempt of
  /// place()/place_with(), before its commit gate, with no lock held.
  /// Deterministic interleaving tests inject competing commits here.  Not
  /// for production use; must be set before concurrent requests start.
  void set_post_plan_hook(std::function<void(std::uint32_t attempt)> hook) {
    post_plan_hook_ = std::move(hook);
  }

 private:
  OstroScheduler* scheduler_;
  /// Readers (snapshot/epoch) share; the validate-and-commit critical
  /// section is the only writer.
  mutable std::shared_mutex mutex_;
  std::function<void(std::uint32_t)> post_plan_hook_;
};

}  // namespace ostro::core
