// PlacementService — the concurrent front end of the placement core.
//
// OstroScheduler is a single-request facade: plan() reads the live
// occupancy, deploy() mutates it, and nothing can plan while a commit is in
// flight.  The service turns one scheduler into an online control plane
// that accepts placement requests from many threads, in the
// optimistic-concurrency shape of shared-state cluster schedulers
// (Borg/Omega): each request
//
//   1. *snapshots* the occupancy under a shared lock — a plain Occupancy
//      copy stamped with its mutation epoch (dc::Occupancy::version()),
//   2. *plans* against that snapshot with no lock held, so an arbitrarily
//      expensive BA*/DBA* search never blocks other planners or
//      committers,
//   3. *validates and commits* under the writer lock: when the live epoch
//      still equals the snapshot epoch nothing interleaved and the plan
//      commits directly; otherwise the placement is re-verified from first
//      principles (core::verify_placement — capacity, bandwidth, zones)
//      against the *current* occupancy before committing,
//   4. on a validation *conflict* (a competing commit consumed resources
//      this plan relies on), replans against a fresh snapshot, at most
//      SearchConfig::service_max_conflict_retries times, before returning
//      the placement uncommitted.
//
// Process-wide telemetry under "service.": counters service.requests /
// committed / conflicts / retries / rejected, summary
// service.commit_wait_seconds (time a request waited for the writer lock).
//
// Once a scheduler is wrapped by a service, all access must go through the
// service (or through the shared scheduler only while no service call is
// in flight): the service's locks protect exactly the call paths routed
// through it.
#pragma once

#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <span>
#include <string>

#include "core/scheduler.h"

namespace ostro::core {

/// A placement together with the occupancy epoch it was planned against.
/// The epoch is what makes staleness detectable at commit time.
struct PlannedPlacement {
  Placement placement;
  std::uint64_t epoch = 0;  ///< dc::Occupancy::version() of the snapshot
};

/// Outcome of one place()/place_with() request.
struct ServiceResult {
  /// The final placement; `committed` tells whether it was applied.
  Placement placement;
  std::uint32_t conflicts = 0;  ///< commit-gate validation failures seen
  std::uint32_t retries = 0;    ///< replans taken after conflicts
  /// Epoch of the snapshot behind the final placement.
  std::uint64_t plan_epoch = 0;
  /// Live occupancy epoch right after this request's commit (0 when
  /// nothing was committed).  Strictly increasing across commits, so it
  /// totally orders the committed set — a serial replay in commit_epoch
  /// order reproduces the service occupancy bit for bit.
  std::uint64_t commit_epoch = 0;
};

class PlacementService {
 public:
  /// What try_commit did with a planned placement.
  enum class CommitOutcome : std::uint8_t {
    kCommitted,  ///< validated (if stale) and applied
    kConflict,   ///< stale snapshot and re-validation failed: replan
    kRejected,   ///< never commitable: infeasible, bandwidth-overcommitted,
                 ///< or the caller's committer refused (deterministic, no
                 ///< retry)
  };

  /// Caller-supplied commit step, run *under the writer lock* after the
  /// re-validation gate passed (the Heat wrapper deploys through the
  /// simulated Heat engine here).  Must synchronously apply the placement
  /// to the scheduler's occupancy and return true, or leave it untouched,
  /// fill `failure`, and return false.  Must not call back into the
  /// service (the writer lock is held).
  using Committer =
      std::function<bool(const Placement& placement, std::string& failure)>;

  /// `scheduler` must outlive the service.
  explicit PlacementService(OstroScheduler& scheduler) noexcept
      : scheduler_(&scheduler) {}

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  [[nodiscard]] const dc::DataCenter& datacenter() const noexcept {
    return scheduler_->datacenter();
  }
  [[nodiscard]] const OstroScheduler& scheduler() const noexcept {
    return *scheduler_;
  }

  /// Current occupancy mutation epoch (shared lock).
  [[nodiscard]] std::uint64_t epoch() const;

  /// Consistent copy of the live occupancy (shared lock held only for the
  /// copy).  Its version() carries the snapshot epoch.
  [[nodiscard]] dc::Occupancy snapshot() const;

  /// Steps 1–2 of the protocol: snapshot, then plan against it with no
  /// lock held.  Safe to call from any number of threads.
  [[nodiscard]] PlannedPlacement plan(const topo::AppTopology& topology,
                                      Algorithm algorithm) const;
  [[nodiscard]] PlannedPlacement plan(const topo::AppTopology& topology,
                                      Algorithm algorithm,
                                      const SearchConfig& config) const;

  /// Step 3: the validate-and-commit gate under the writer lock.  On
  /// kCommitted, `planned.placement.committed` is set and `commit_epoch`
  /// (when non-null) receives the post-commit epoch.  On kConflict the
  /// placement is untouched so the caller can inspect or replan.
  CommitOutcome try_commit(const topo::AppTopology& topology,
                           PlannedPlacement& planned,
                           std::uint64_t* commit_epoch = nullptr);
  CommitOutcome try_commit_with(const topo::AppTopology& topology,
                                PlannedPlacement& planned,
                                const Committer& committer,
                                std::uint64_t* commit_epoch = nullptr);

  /// One member of a batched commit (the StreamingService dispatcher).
  /// `topology`/`planned` are the inputs; `outcome`/`commit_epoch` are
  /// filled by try_commit_batch.  A null `committer` uses the default
  /// scheduler commit; a non-null one runs as the member's commit step
  /// under the writer lock (same contract as try_commit_with).
  struct BatchCommitMember {
    const topo::AppTopology* topology = nullptr;
    PlannedPlacement* planned = nullptr;
    const Committer* committer = nullptr;
    CommitOutcome outcome = CommitOutcome::kConflict;
    std::uint64_t commit_epoch = 0;
  };

  /// Batched step 3: validate-and-commit every member under ONE
  /// writer-lock acquisition, in batch order.  Members are typically
  /// planned against the same shared snapshot, so the first committable
  /// member takes the epoch fast path and every later member is
  /// re-verified against the occupancy as already mutated by its batch
  /// predecessors — intra-batch resource collisions surface as kConflict
  /// exactly like cross-request races, and the caller spills those members
  /// into the per-request conflict-replan ladder.  Returns the number of
  /// members committed.
  std::size_t try_commit_batch(std::span<BatchCommitMember> batch);

  /// The full request: plan → try_commit → bounded conflict-retry ladder.
  /// The returned placement has `committed` set iff it was applied;
  /// otherwise `failure_reason` says why (infeasible, overcommitted, or
  /// conflict ladder exhausted).
  ServiceResult place(const topo::AppTopology& topology, Algorithm algorithm);
  ServiceResult place(const topo::AppTopology& topology, Algorithm algorithm,
                      const SearchConfig& config);
  /// Same request shape with the caller's committer as the commit step
  /// (the plan→deploy path of the Heat wrapper, made atomic).
  ServiceResult place_with(const topo::AppTopology& topology,
                           Algorithm algorithm, const SearchConfig& config,
                           const Committer& committer);

  /// Test instrumentation: invoked after each planning attempt of
  /// place()/place_with(), before its commit gate, with no lock held.
  /// Deterministic interleaving tests inject competing commits here.  Not
  /// for production use; must be set before concurrent requests start.
  void set_post_plan_hook(std::function<void(std::uint32_t attempt)> hook) {
    post_plan_hook_ = std::move(hook);
  }

 private:
  OstroScheduler* scheduler_;
  /// Readers (snapshot/epoch) share; the validate-and-commit critical
  /// section is the only writer.
  mutable std::shared_mutex mutex_;
  std::function<void(std::uint32_t)> post_plan_hook_;
};

}  // namespace ostro::core
