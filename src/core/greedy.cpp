#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/candidates.h"
#include "core/estimator.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::core {
namespace {

constexpr double kTieEps = 1e-12;

struct Means {
  double cpu = 0.0, mem = 0.0, disk = 0.0, bw = 0.0;
};

[[nodiscard]] Means mean_requirements(const topo::AppTopology& topology) {
  Means m;
  for (const auto& node : topology.nodes()) {
    m.cpu += node.requirements.vcpus;
    m.mem += node.requirements.mem_gb;
    m.disk += node.requirements.disk_gb;
    m.bw += topology.incident_bandwidth(node.id);
  }
  const auto n = static_cast<double>(topology.node_count());
  m.cpu /= n;
  m.mem /= n;
  m.disk /= n;
  m.bw /= n;
  return m;
}

/// Buffers reused across pick_eg calls within one run_greedy: the estimate
/// fan and one EstimateScratch per pool slot, so the per-step candidate
/// scan allocates nothing once warm.
struct EgScratch {
  std::vector<Estimate> estimates;
  std::vector<EstimateScratch> per_slot;
  CandidateBuffer candidates;
};

/// EG host choice: minimize utility(accumulated + estimate); u_c breaks
/// ties, then already-active hosts, then the lowest host id (determinism).
[[nodiscard]] dc::HostId pick_eg(const PartialPlacement& state,
                                 topo::NodeId node,
                                 std::span<const dc::HostId> candidates,
                                 util::ThreadPool* pool, bool use_context,
                                 EgScratch& scratch) {
  const double rest = Estimator::rest_bound(state, node);
  std::vector<Estimate>& estimates = scratch.estimates;
  estimates.resize(candidates.size());
  if (use_context) {
    const NodeEstimateContext context(state, node, rest);
    if (pool != nullptr) {
      scratch.per_slot.resize(std::max<std::size_t>(1, pool->size()));
      auto& slots = scratch.per_slot;
      pool->parallel_for_slots(
          candidates.size(), [&](std::size_t slot, std::size_t i) {
            estimates[i] = context.estimate(candidates[i], slots[slot]);
          });
    } else {
      scratch.per_slot.resize(1);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        estimates[i] = context.estimate(candidates[i], scratch.per_slot[0]);
      }
    }
  } else {
    const auto evaluate = [&](std::size_t i) {
      estimates[i] =
          Estimator::candidate_estimate(state, node, candidates[i], rest);
    };
    if (pool != nullptr) {
      pool->parallel_for(candidates.size(), evaluate);
    } else {
      for (std::size_t i = 0; i < candidates.size(); ++i) evaluate(i);
    }
  }

  const Objective& objective = state.objective();
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double score =
        objective.utility(state.ubw() + estimates[i].ubw,
                          state.new_active_hosts() + estimates[i].uc);
    if (score + kTieEps < best_score) {
      best = i;
      best_score = score;
    } else if (score < best_score + kTieEps) {
      // Tie: fewer new activations, then prefer active hosts.
      const bool better_uc = estimates[i].uc < estimates[best].uc - kTieEps;
      const bool equal_uc =
          std::abs(estimates[i].uc - estimates[best].uc) <= kTieEps;
      const bool active_i = state.is_active(candidates[i]);
      const bool active_best = state.is_active(candidates[best]);
      if (better_uc || (equal_uc && active_i && !active_best)) {
        best = i;
        best_score = std::min(best_score, score);
      }
    }
  }
  return candidates[best];
}

/// EG_C host choice: best fit on remaining compute (then memory).
[[nodiscard]] dc::HostId pick_egc(const PartialPlacement& state,
                                  std::span<const dc::HostId> candidates) {
  dc::HostId best = candidates.front();
  topo::Resources best_avail = state.available(best);
  for (const dc::HostId host : candidates) {
    const topo::Resources avail = state.available(host);
    if (avail.vcpus < best_avail.vcpus - kTieEps ||
        (std::abs(avail.vcpus - best_avail.vcpus) <= kTieEps &&
         avail.mem_gb < best_avail.mem_gb - kTieEps)) {
      best = host;
      best_avail = avail;
    }
  }
  return best;
}

/// EG_BW host choice: minimize the actual bandwidth cost of the node's
/// pipes to placed neighbors; ties go to the host with the most available
/// uplink bandwidth ("EG_BW tries to use the hosts that have the most
/// available bandwidth first", Section IV-A).  A greedy search cannot
/// backtrack, so candidates whose uplink cannot carry the node's and its
/// co-residents' not-yet-placed pipes are deprioritized — without this the
/// baseline dead-ends on large topologies instead of producing the data
/// point the comparison needs.
[[nodiscard]] dc::HostId pick_egbw(const PartialPlacement& state,
                                   topo::NodeId node,
                                   std::span<const dc::HostId> candidates) {
  const topo::AppTopology& topology = state.topology();
  const dc::DataCenter& datacenter = state.datacenter();
  dc::HostId best = candidates.front();
  double best_cost = std::numeric_limits<double>::infinity();
  double best_uplink = -1.0;
  for (const dc::HostId host : candidates) {
    double cost = 0.0;
    double uplink_demand = state.pending_uplink_mbps(host);
    const std::uint32_t rack = datacenter.host(host).rack;
    double rack_demand = state.pending_rack_uplink_mbps(rack);
    for (const auto& nb : topology.neighbors(node)) {
      const dc::HostId other = state.host_of(nb.node);
      if (other == dc::kInvalidHost) {
        uplink_demand += nb.bandwidth_mbps;
        rack_demand += nb.bandwidth_mbps;
        continue;
      }
      const dc::Scope scope = datacenter.scope_between(host, other);
      cost += Objective::edge_cost(nb.bandwidth_mbps, scope);
      if (scope != dc::Scope::kSameHost) {
        uplink_demand += nb.bandwidth_mbps;
      } else {
        uplink_demand = std::max(0.0, uplink_demand - nb.bandwidth_mbps);
      }
      if (scope != dc::Scope::kSameHost && scope != dc::Scope::kSameRack) {
        rack_demand += nb.bandwidth_mbps;
      } else {
        rack_demand = std::max(0.0, rack_demand - nb.bandwidth_mbps);
      }
    }
    const double uplink = state.link_available(datacenter.host_link(host));
    if (uplink_demand > uplink + kTieEps ||
        rack_demand >
            state.link_available(datacenter.rack_link(rack)) + kTieEps) {
      cost += state.objective().ubw_worst();  // feasibility-risk screen
    }
    if (cost + kTieEps < best_cost ||
        (cost < best_cost + kTieEps && uplink > best_uplink + kTieEps)) {
      best = host;
      best_cost = std::min(cost, best_cost);
      best_uplink = uplink;
    }
  }
  return best;
}

}  // namespace

std::vector<topo::NodeId> eg_sort_order(const topo::AppTopology& topology) {
  const Means means = mean_requirements(topology);
  std::vector<double> weight(topology.node_count(), 0.0);
  for (const auto& node : topology.nodes()) {
    double w = 0.0;
    if (means.cpu > 0.0) w += node.requirements.vcpus / means.cpu;
    if (means.mem > 0.0) w += node.requirements.mem_gb / means.mem;
    if (means.disk > 0.0) w += node.requirements.disk_gb / means.disk;
    if (means.bw > 0.0) w += topology.incident_bandwidth(node.id) / means.bw;
    weight[node.id] = w;
  }
  std::vector<topo::NodeId> order(topology.node_count());
  for (topo::NodeId v = 0; v < order.size(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](topo::NodeId a, topo::NodeId b) {
                     if (weight[a] != weight[b]) return weight[a] > weight[b];
                     return a < b;
                   });
  return order;
}

std::vector<topo::NodeId> bandwidth_sort_order(
    const topo::AppTopology& topology) {
  std::vector<topo::NodeId> order(topology.node_count());
  for (topo::NodeId v = 0; v < order.size(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](topo::NodeId a, topo::NodeId b) {
                     const double bwa = topology.incident_bandwidth(a);
                     const double bwb = topology.incident_bandwidth(b);
                     if (bwa != bwb) return bwa > bwb;
                     return a < b;
                   });
  return order;
}

GreedyOutcome run_greedy(Algorithm variant, PartialPlacement state,
                         std::span<const topo::NodeId> order,
                         util::ThreadPool* pool, bool use_estimate_context,
                         bool use_candidate_index) {
  if (variant != Algorithm::kEg && variant != Algorithm::kEgC &&
      variant != Algorithm::kEgBw) {
    throw std::invalid_argument("run_greedy: not a greedy variant");
  }
  static util::metrics::Counter& m_runs = util::metrics::counter("greedy.runs");
  static util::metrics::Counter& m_candidates =
      util::metrics::counter("greedy.candidates_evaluated");
  static util::metrics::Counter& m_placed =
      util::metrics::counter("greedy.nodes_placed");
  static util::metrics::Counter& m_failures =
      util::metrics::counter("greedy.no_candidate_failures");
  static util::metrics::Summary& m_seconds =
      util::metrics::summary("greedy.run_seconds");
  const util::metrics::ScopedTimer phase_timer(m_seconds);
  const util::WallTimer timer;
  m_runs.inc();

  GreedyOutcome outcome(std::move(state));
  // EG_C is the paper's pure bin-packing baseline: it ignores the pipes
  // entirely, so its candidate set skips the bandwidth constraint and its
  // placements may overcommit links (callers check has_link_overcommit()).
  const bool check_bandwidth = variant != Algorithm::kEgC;
  EgScratch scratch;
  for (const topo::NodeId node : order) {
    if (outcome.state.is_placed(node)) continue;
    const std::vector<dc::HostId>& candidates =
        get_candidates(outcome.state, node, scratch.candidates,
                       check_bandwidth, use_candidate_index);
    if (candidates.empty()) {
      m_failures.inc();
      outcome.failure = "no feasible host for node " +
                        outcome.state.topology().node(node).name;
      outcome.stats.runtime_seconds = timer.elapsed_seconds();
      return outcome;
    }
    m_candidates.add(candidates.size());
    outcome.stats.candidates_evaluated += candidates.size();
    if (variant == Algorithm::kEg) {
      // pick_eg scores every candidate with the estimate heuristic.
      outcome.stats.heuristic_calls += candidates.size();
    }
    dc::HostId chosen = dc::kInvalidHost;
    switch (variant) {
      case Algorithm::kEg:
        chosen = pick_eg(outcome.state, node, candidates, pool,
                         use_estimate_context, scratch);
        break;
      case Algorithm::kEgC:
        chosen = pick_egc(outcome.state, candidates);
        break;
      case Algorithm::kEgBw:
        chosen = pick_egbw(outcome.state, node, candidates);
        break;
      default:
        break;  // unreachable; validated above
    }
    outcome.state.place(node, chosen);
    m_placed.inc();
  }
  outcome.feasible = outcome.state.complete();
  if (!outcome.feasible && outcome.failure.empty()) {
    outcome.failure = "order did not cover all nodes";
  }
  outcome.stats.runtime_seconds = timer.elapsed_seconds();
  return outcome;
}

}  // namespace ostro::core
