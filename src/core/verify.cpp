#include "core/verify.h"

#include <unordered_map>

#include "util/string_util.h"

namespace ostro::core {

std::vector<std::string> verify_assignment_structure(
    const dc::DataCenter& datacenter, const topo::AppTopology& topology,
    const net::Assignment& assignment) {
  std::vector<std::string> violations;

  if (assignment.size() != topology.node_count()) {
    violations.push_back(util::format(
        "assignment has %zu entries for %zu nodes", assignment.size(),
        topology.node_count()));
    return violations;
  }
  for (const auto& node : topology.nodes()) {
    const dc::HostId host = assignment[node.id];
    if (host == dc::kInvalidHost || host >= datacenter.host_count()) {
      violations.push_back("node " + node.name + " is unplaced");
    }
  }
  if (!violations.empty()) return violations;

  // Hardware tags: every node on a host that carries its required tags.
  for (const auto& node : topology.nodes()) {
    if (node.required_tags.empty()) continue;
    const dc::Host& host = datacenter.host(assignment[node.id]);
    if (!host.has_all_tags(node.required_tags)) {
      violations.push_back("node " + node.name + " requires tags host " +
                           host.name + " does not carry");
    }
  }

  // Latency budgets: capped pipes within the scope latency.
  for (const auto& edge : topology.edges()) {
    if (edge.max_latency_us <= 0.0) continue;
    const dc::Scope scope =
        datacenter.scope_between(assignment[edge.a], assignment[edge.b]);
    if (datacenter.scope_latency_us(scope) > edge.max_latency_us) {
      violations.push_back(util::format(
          "pipe %s--%s exceeds its latency budget: %.0f us > %.0f us",
          topology.node(edge.a).name.c_str(),
          topology.node(edge.b).name.c_str(),
          datacenter.scope_latency_us(scope), edge.max_latency_us));
    }
  }

  // Affinity groups: pairwise co-location at the declared level.
  for (const auto& group : topology.affinities()) {
    for (std::size_t i = 0; i < group.members.size(); ++i) {
      for (std::size_t j = i + 1; j < group.members.size(); ++j) {
        const dc::HostId ha = assignment[group.members[i]];
        const dc::HostId hb = assignment[group.members[j]];
        if (datacenter.separated_at(ha, hb, group.level)) {
          violations.push_back(
              "affinity " + group.name + ": " +
              topology.node(group.members[i]).name + " and " +
              topology.node(group.members[j]).name + " not co-located at " +
              std::string(topo::to_string(group.level)) + " level");
        }
      }
    }
  }

  // Diversity zones: pairwise separation at the declared level.
  for (const auto& zone : topology.zones()) {
    for (std::size_t i = 0; i < zone.members.size(); ++i) {
      for (std::size_t j = i + 1; j < zone.members.size(); ++j) {
        const dc::HostId ha = assignment[zone.members[i]];
        const dc::HostId hb = assignment[zone.members[j]];
        if (!datacenter.separated_at(ha, hb, zone.level)) {
          violations.push_back(
              "zone " + zone.name + ": " +
              topology.node(zone.members[i]).name + " and " +
              topology.node(zone.members[j]).name + " not separated at " +
              std::string(topo::to_string(zone.level)) + " level");
        }
      }
    }
  }
  return violations;
}

std::vector<std::string> verify_placement(const dc::Occupancy& base,
                                          const topo::AppTopology& topology,
                                          const net::Assignment& assignment) {
  const dc::DataCenter& datacenter = base.datacenter();

  // Structure first (shape, tags, latency, affinities, zones).  Only a
  // malformed shape returns early — the capacity sums below would index out
  // of range; every other violation accumulates alongside them so the
  // report lists everything wrong with the assignment at once.
  std::vector<std::string> violations =
      verify_assignment_structure(datacenter, topology, assignment);
  if (assignment.size() != topology.node_count()) return violations;
  for (const dc::HostId host : assignment) {
    if (host >= datacenter.host_count()) return violations;
  }

  // Host capacity: total requirements per host vs available-in-base.
  std::unordered_map<dc::HostId, topo::Resources> per_host;
  for (const auto& node : topology.nodes()) {
    per_host[assignment[node.id]] += node.requirements;
  }
  for (const auto& [host, load] : per_host) {
    const topo::Resources avail = base.available(host);
    if (!load.fits_within(avail)) {
      violations.push_back("host " + datacenter.host(host).name +
                           " over capacity: needs " + load.to_string() +
                           ", available " + avail.to_string());
    }
  }

  // Pipe bandwidth: aggregated per physical link vs available-in-base.
  std::unordered_map<dc::LinkId, double> per_link;
  for (const auto& edge : topology.edges()) {
    const dc::PathLinks path =
        datacenter.path_between(assignment[edge.a], assignment[edge.b]);
    for (const dc::LinkId link : path) {
      per_link[link] += edge.bandwidth_mbps;
    }
  }
  constexpr double kEps = 1e-6;
  for (const auto& [link, mbps] : per_link) {
    const double avail = base.link_available_mbps(link);
    if (mbps > avail + kEps) {
      violations.push_back(util::format(
          "link %s over capacity: needs %.1f Mbps, available %.1f Mbps",
          datacenter.link_name(link).c_str(), mbps, avail));
    }
  }
  return violations;
}

}  // namespace ostro::core
