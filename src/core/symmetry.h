// Diversity-zone symmetry reduction (Section III-B-3 of the paper).
//
// The paper observes that when the nodes of a diversity zone have the same
// resource requirements, BA* need not branch separately for each of them:
// the candidate placements of interchangeable nodes are identical.  We make
// that observation safe by detecting *provably* interchangeable nodes: two
// nodes are interchangeable iff swapping them is an automorphism of the
// application topology, i.e. they have the same kind, identical resource
// requirements, exactly the same diversity-zone memberships, and identical
// neighbor sets (excluding one another) with equal pipe bandwidths.
//
// The search then breaks the permutation symmetry with an ordering
// constraint: within a group, nodes (in expansion order) must receive
// non-decreasing host ids.  Every feasible placement has an equivalent
// representative satisfying the constraint, so optimality is preserved
// while the branching factor drops by up to |group|! per group.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/app_topology.h"

namespace ostro::core {

/// group_of[node] = symmetry-group index; nodes alone in their group are
/// not interchangeable with anything.
struct SymmetryGroups {
  std::vector<std::uint32_t> group_of;
  std::size_t group_count = 0;
  /// Number of groups with >= 2 members (diagnostic).
  std::size_t nontrivial_groups = 0;
};

[[nodiscard]] SymmetryGroups detect_symmetry_groups(
    const topo::AppTopology& topology);

}  // namespace ostro::core
