// Candidate host generation (the GetCandidates of Algorithm 1): all hosts
// that satisfy the capacity, diversity-zone and bandwidth constraints of
// Section II-B-2 for one node given the current partial placement.
#pragma once

#include <vector>

#include "core/partial.h"

namespace ostro::core {

/// Hosts on which `node` can be placed right now, in ascending host id.
/// `check_bandwidth = false` gives the EG_C view that ignores pipe
/// feasibility (Section IV-A's pure bin-packing baseline).
[[nodiscard]] std::vector<dc::HostId> get_candidates(
    const PartialPlacement& p, topo::NodeId node, bool check_bandwidth = true);

}  // namespace ostro::core
