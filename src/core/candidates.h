// Candidate host generation (the GetCandidates of Algorithm 1): all hosts
// that satisfy the capacity, diversity-zone and bandwidth constraints of
// Section II-B-2 for one node given the current partial placement.
//
// Two implementations produce bit-identical candidate lists (same hosts,
// same ascending order; differential-tested in candidates_index_test.cpp):
//
//  * the linear reference scan: one can_place call per host, O(hosts);
//  * the indexed descent: walks the data-center tree and skips every
//    rack/pod/site whose dc::FeasibilityIndex aggregates cannot satisfy the
//    node (max free capacity below the requirement, no feasible host left,
//    or a host uplink that cannot carry the pipes to placed neighbors), and
//    applies diversity-zone exclusions as subtree/host masks *before* any
//    per-host constraint check.  Only hosts that survive the pruning pay
//    for a full can_place call.
//
// The searches call the buffered overload with
// SearchConfig::use_candidate_index selecting the path (default indexed;
// the linear scan is kept as the reference, like use_estimate_context).
#pragma once

#include <cstdint>
#include <vector>

#include "core/partial.h"

namespace ostro::core {

/// Caller-owned result + scratch storage for candidate generation, reused
/// across placement steps so the hot path allocates nothing once warm.
struct CandidateBuffer {
  std::vector<dc::HostId> hosts;  ///< result, ascending host id

  // Scratch of the indexed descent (zone exclusion masks and the hosts of
  // the node's placed neighbors); callers never read these.
  std::vector<dc::HostId> excluded_hosts;
  std::vector<std::uint32_t> excluded_racks;
  std::vector<std::uint32_t> excluded_pods;
  std::vector<std::uint32_t> excluded_sites;
  std::vector<dc::HostId> neighbor_hosts;
};

/// Linear reference scan: hosts on which `node` can be placed right now, in
/// ascending host id.  `check_bandwidth = false` gives the EG_C view that
/// ignores pipe feasibility (Section IV-A's pure bin-packing baseline).
[[nodiscard]] std::vector<dc::HostId> get_candidates(
    const PartialPlacement& p, topo::NodeId node, bool check_bandwidth = true);

/// Indexed descent; fills `buf.hosts` with exactly the hosts (and order)
/// the linear scan returns.  Increments the "candidates.subtrees_pruned" /
/// "candidates.hosts_skipped" metrics for every subtree and host it
/// eliminated without a can_place call.
void get_candidates_indexed(const PartialPlacement& p, topo::NodeId node,
                            CandidateBuffer& buf, bool check_bandwidth = true);

/// Dispatcher the searches use: fills and returns `buf.hosts` via the
/// indexed descent (`use_index`, the SearchConfig::use_candidate_index
/// default) or the linear reference scan.
std::vector<dc::HostId>& get_candidates(const PartialPlacement& p,
                                        topo::NodeId node,
                                        CandidateBuffer& buf,
                                        bool check_bandwidth = true,
                                        bool use_index = true);

}  // namespace ostro::core
