// Public request/result/configuration types of the Ostro placement core.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "datacenter/datacenter.h"
#include "net/reservation.h"
#include "topology/app_topology.h"

namespace ostro::core {

/// The placement algorithms of Sections III-A..III-C plus the two greedy
/// baselines the evaluation compares against (Section IV-A).
enum class Algorithm : std::uint8_t {
  kEg,    ///< estimate-based greedy (Algorithm 1)
  kEgC,   ///< greedy minimizing host count (bin packing baseline, "EG_C")
  kEgBw,  ///< greedy minimizing bandwidth only ("EG_BW")
  kBaStar,   ///< bounded A* (Algorithm 2)
  kDbaStar,  ///< deadline-bounded A* (Section III-C)
};

[[nodiscard]] const char* to_string(Algorithm algorithm) noexcept;
/// Parses "eg" / "egc" / "egbw" / "ba" / "dba" (case-insensitive); throws
/// std::invalid_argument otherwise.
[[nodiscard]] Algorithm parse_algorithm(const std::string& name);

/// How BA*/DBA* search budgets (max_open_paths, dba_beam_width) are sized.
///
///  * kFixed — the configured constants are used verbatim, reproducing the
///    paper's fixed-budget behavior bit for bit (the default, and what the
///    paper-reproduction benches run).
///  * kAuto — core::BudgetController sizes the budgets per plan from the
///    measured open-queue peaks of prior runs (a static node-count x
///    candidate-fan estimate on the first plan), and a valve-fire failure
///    is retried with a geometrically widened budget before falling back
///    to the greedy EG completion.  See DESIGN.md section 8.
enum class BudgetMode : std::uint8_t { kFixed, kAuto };

[[nodiscard]] const char* to_string(BudgetMode mode) noexcept;
/// Parses "fixed" / "auto" (case-insensitive); throws std::invalid_argument
/// otherwise.
[[nodiscard]] BudgetMode parse_budget_mode(const std::string& name);

/// Memory model of the BA*/DBA* inner loop (DESIGN.md section 11).
///
///  * kReference — the original containers: every branch deep-copies the
///    PartialPlacement (four unordered_maps), the open list is a
///    std::priority_queue of shared_ptr-holding entries, and the closed set
///    is an unordered_set.  Kept as the differential baseline.
///  * kPooled — zero-allocation steady state: search states live in a
///    per-thread SearchArena (recycled between plans, never freed),
///    branching records O(delta) copy-on-write parent-pointer deltas with a
///    flatten threshold, the open list is a preallocated 4-ary heap keyed
///    by the packed f-cost, and the closed/dedup sets are epoch-stamped
///    flat tables.  Bit-identical to kReference — both modes pop the same
///    strict total order and apply the same floating-point operation
///    sequence — which the differential suite verifies.
enum class SearchCore : std::uint8_t { kReference, kPooled };

[[nodiscard]] const char* to_string(SearchCore core) noexcept;
/// Parses "reference" / "pooled" (case-insensitive); throws
/// std::invalid_argument otherwise.
[[nodiscard]] SearchCore parse_search_core(const std::string& name);

/// Tuning knobs shared by all algorithms.  Defaults mirror the paper's
/// simulation setup (theta = 0.6/0.4, Section IV-C).
struct SearchConfig {
  /// Objective weights; must be non-negative and sum to a positive value
  /// (they are re-normalized to sum to 1).
  double theta_bw = 0.6;
  double theta_c = 0.4;

  /// DBA* wall-clock budget T in seconds.  <= 0 means "no deadline", which
  /// makes DBA* behave like BA* (no pruning pressure ever builds up).
  double deadline_seconds = 0.0;

  /// Diversity-zone symmetry reduction (Section III-B-3).  Only applied to
  /// nodes proven interchangeable by color refinement; see core/symmetry.h.
  bool symmetry_reduction = true;

  /// Use the paper's greedy imaginary-host estimate as the A* heuristic
  /// instead of the strictly admissible bound.  The greedy estimate is
  /// sharper but not guaranteed admissible; kept as an ablation knob
  /// (bench_ablation_heuristic).
  bool greedy_estimate_in_astar = false;

  /// Seed for DBA*'s pruning decisions (and nothing else).
  std::uint64_t seed = 42;

  /// Evaluate EG's candidate fan through a NodeEstimateContext (per-node
  /// invariants of the estimate hoisted out of the per-host loop) instead
  /// of calling Estimator::candidate_estimate per candidate.  The context
  /// produces bit-identical estimates — this switch exists so differential
  /// tests can force the reference path, not as a tuning knob.
  bool use_estimate_context = true;

  /// Generate candidate hosts through the hierarchical feasibility index
  /// (dc::FeasibilityIndex subtree pruning; see DESIGN.md section 7)
  /// instead of the full O(hosts) linear can_place scan.  Both paths return
  /// bit-identical candidate lists — this switch exists so differential
  /// tests and ablations can force the reference scan, not as a tuning
  /// knob.
  bool use_candidate_index = true;

  /// Tighten the admissible bound (and the candidate descent) with the
  /// precomputed dc::PruneLabels: separation-feasibility counters escalate
  /// pipe scopes no completion can avoid, host-anchored climb labels price
  /// placed-free pipes against the feasibility aggregates around the placed
  /// host, and tag-reachability bitmaps skip subtrees lacking a required
  /// hardware tag.  The tightened bound stays admissible, so BA*/DBA*
  /// return bit-identical optima while expanding fewer states (this IS a
  /// perf knob, differential-tested against the reference bound it
  /// replaces; see DESIGN.md section 12).
  bool use_prune_labels = true;

  /// Safety valve for BA*/DBA*: abort with the incumbent EG solution when
  /// the open queue would exceed this many paths (0 = unlimited).  Under
  /// budget_mode == kAuto this is the *seed ceiling* of the first attempt,
  /// not a hard bound: the BudgetController may size the first attempt
  /// below it and widens past it on valve-fire retries.
  std::size_t max_open_paths = 2'000'000;

  /// Deterministic expansion budget for BA*/DBA*: stop (keeping the best
  /// incumbent) once this many paths have been expanded (0 = unlimited).
  /// Unlike the open-queue valve — whose firing point depends on how
  /// pruning shapes the frontier — this caps the *work* directly, which
  /// makes bounded apples-to-apples runs reproducible: the search-core
  /// benchmark uses it to hold the expansion count fixed while comparing
  /// memory models, and it never triggers kAuto budget retries.
  std::size_t max_expansions = 0;

  /// Search-budget sizing regime for max_open_paths / dba_beam_width; see
  /// BudgetMode.  kFixed (the default) is bit-identical to the constants
  /// above and is differential-tested against kAuto.
  BudgetMode budget_mode = BudgetMode::kFixed;

  /// Memory model of the BA*/DBA* inner loop; see SearchCore.  kPooled (the
  /// default) is bit-identical to kReference and differential-tested
  /// against it; kReference keeps the original containers as the baseline.
  SearchCore search_core = SearchCore::kPooled;

  /// kAuto only: at most this many geometrically widened retries after a
  /// valve-fire failure (hit_open_limit with no feasible placement) before
  /// the scheduler falls back to a greedy EG completion.
  std::uint32_t budget_max_retries = 3;

  /// kAuto only: factor by which max_open_paths grows per widened retry
  /// (the beam doubles per retry independently).  Must be > 1.
  double budget_widen_factor = 8.0;

  /// Worker threads for EG's parallel candidate evaluation; 0 = hardware
  /// concurrency.
  std::size_t threads = 0;

  /// core::PlacementService only: how many times a request whose
  /// validate-and-commit gate fails (another request committed a
  /// conflicting placement between snapshot and commit) is replanned
  /// against a fresh snapshot before the service gives up and returns the
  /// placement uncommitted.  Planning and single-scheduler paths ignore it.
  std::uint32_t service_max_conflict_retries = 3;

  /// core::StreamingService only: capacity of the bounded admission queue.
  /// A submit that finds the queue full is rejected immediately (the
  /// admission-control answer to sustained overload) rather than queued
  /// into unbounded latency.  Must be >= 1.
  std::size_t stream_queue_capacity = 1024;

  /// core::StreamingService only: how many queued requests a dispatcher
  /// batches against one shared occupancy snapshot (plan every member with
  /// no lock held, validate-and-commit the group under one writer-lock
  /// acquisition).  1 degenerates to per-request dispatch.  Must be >= 1.
  std::size_t stream_max_batch = 8;

  /// core::StreamingService only: dispatcher threads draining the
  /// admission queue (each forms its own batches).  Must be >= 1.
  std::size_t stream_dispatch_threads = 1;

  /// DBA* children beam: after candidate generation (and host-equivalence
  /// dedup) only the best this-many children by estimated utility are
  /// queued.  Bounds the branching factor — a 2400-host fleet otherwise
  /// produces thousands of near-identical children per expansion, and the
  /// open queue drowns before any path completes.  Applies to DBA* only;
  /// BA* keeps every child (it claims optimality).  0 = unlimited.
  std::size_t dba_beam_width = 32;

  /// DBA* initial pruning-range r and adaptation constant (Section III-C;
  /// alpha_factor is the paper's 0.2 in alpha = 0.2 * (T / T_left)).
  /// r starts at 0 (no pruning) and grows only under deadline pressure: a
  /// positive initial r makes P(x > s) = 1 at the shallow frontier, which
  /// would discard the root before the search learns anything.
  double initial_prune_range = 0.0;
  double alpha_factor = 0.2;
  /// Upper cap on r.  Pruning with probability (r - s) / r confines path
  /// mortality to the shallowest r-fraction of the search depth; beyond the
  /// cap the frontier would die out faster than the candidate fan can
  /// replenish it and no path could ever complete.
  double max_prune_range = 0.5;

  void validate() const;  ///< throws std::invalid_argument on bad values
};

/// A placement request: what to place, with what weights, and (for online
/// adaptation, Section IV-E) which nodes are pinned to their current hosts.
struct PlacementRequest {
  const topo::AppTopology* topology = nullptr;
  SearchConfig config;

  /// Pinned nodes: pinned[node] = host keeps that node fixed; use
  /// dc::kInvalidHost (or an empty vector) for free nodes.
  std::vector<dc::HostId> pinned;
};

/// Search diagnostics reported alongside the result.  The same quantities
/// are accumulated process-wide in the util::metrics registry (counter
/// names in the comments below); the struct carries the per-run view.
struct SearchStats {
  std::uint64_t paths_expanded = 0;  ///< open-queue pops that were expanded
                                     ///< ("astar.nodes_expanded")
  std::uint64_t paths_generated = 0;
  std::uint64_t paths_pruned_bound = 0;   ///< pruned by u >= u_upper
  std::uint64_t paths_pruned_random = 0;  ///< DBA* probabilistic pruning
  std::uint64_t paths_deduped = 0;        ///< closed-set / symmetry hits
  std::uint64_t eg_reruns = 0;            ///< RunEG re-bounding invocations
  /// Candidate hosts scored during greedy host selection, over the initial
  /// EG run and every RunEG re-bounding ("greedy.candidates_evaluated").
  std::uint64_t candidates_evaluated = 0;
  /// Estimator::candidate_estimate invocations this run charged (EG's
  /// parallel utility fan plus DBA*'s sibling ranking;
  /// "estimator.candidate_estimates" is the process-wide total).
  std::uint64_t heuristic_calls = 0;
  /// Candidate hosts dropped before expansion by the symmetry machinery:
  /// the interchangeable-node ordering constraint plus host-equivalence
  /// dedup ("astar.symmetry_candidates_pruned").
  std::uint64_t symmetry_pruned = 0;
  /// Largest open-queue size observed ("astar.open_queue_size" summary).
  std::uint64_t open_queue_peak = 0;
  std::uint32_t max_depth = 0;  ///< deepest expanded search path
  /// BA*/DBA*: the open-queue safety valve (max_open_paths) fired and the
  /// incumbent was returned without an optimality certificate.
  bool truncated = false;
  /// The open-queue safety valve fired on this attempt ("budget.valve_fires"
  /// process-wide).  Unlike `truncated` it is also set on the greedy
  /// fallback result when the auto-budget retry ladder was exhausted.
  bool hit_open_limit = false;
  /// kAuto only: geometrically widened retries that preceded this result
  /// after valve-fire failures ("budget.retries" process-wide); the other
  /// stats fields describe the final attempt only.
  std::uint32_t budget_retries = 0;
  /// Budgets actually in force for the returned result (0 = unlimited;
  /// effective_beam_width is 0 for BA*, which keeps every child).  Under
  /// kFixed these echo the SearchConfig constants; under kAuto they are the
  /// BudgetController's decision ("budget.max_open_paths" summary).
  std::size_t effective_max_open_paths = 0;
  std::size_t effective_beam_width = 0;
  double runtime_seconds = 0.0;
  /// SearchCore::kPooled only: bytes retained by this thread's SearchArena
  /// after the run — pooled states, open heap, closed set, and scratch
  /// ("search.bytes_per_plan" summary).  0 under kReference.
  std::size_t arena_bytes = 0;
  /// kPooled only: pooled states materialized during this run (recycled
  /// into the arena's free list when the plan finishes).
  std::uint64_t arena_states = 0;
  /// kPooled only: the run reused a warm arena left by a previous plan on
  /// the same thread instead of growing fresh memory
  /// ("search.arena_reuse" counter).
  bool arena_reused = false;
};

/// Result of one placement computation.
struct Placement {
  /// True when every node was placed subject to all constraints.
  bool feasible = false;
  std::string failure_reason;

  /// True when the placement was also committed to an occupancy (by
  /// OstroScheduler::deploy/commit or the PlacementService).  plan() never
  /// sets it.  A deploy can return `feasible && !committed`: the placement
  /// is valid but was not applied — it overcommits link bandwidth (EG_C),
  /// or the service's conflict-retry ladder was exhausted
  /// (`failure_reason` says which).  Callers counting deployed stacks must
  /// test this flag, not `feasible`.
  bool committed = false;

  /// Node -> host (index = NodeId); dc::kInvalidHost when infeasible.
  net::Assignment assignment;

  /// Objective value in [0, 1] (lower is better) and its raw components.
  double utility = std::numeric_limits<double>::infinity();
  double reserved_bandwidth_mbps = 0.0;  ///< u_bw (bw x links traversed)
  int new_active_hosts = 0;              ///< u_c
  /// True when the placement exceeds some link's available bandwidth.
  /// Only EG_C (which ignores pipes by definition) can produce this; such
  /// a placement must not be committed.
  bool bandwidth_overcommitted = false;
  int hosts_used = 0;  ///< distinct hosts holding at least one node

  SearchStats stats;
};

}  // namespace ostro::core
