#include "core/service.h"

#include <stdexcept>
#include <utility>

#include "core/verify.h"
#include "datacenter/state_delta.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::core {

std::uint64_t PlacementService::epoch() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return scheduler_->occupancy().version();
}

dc::Occupancy PlacementService::snapshot() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return scheduler_->occupancy();
}

dc::FeasibilityIndex::Aggregate PlacementService::root_aggregate() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return scheduler_->occupancy().feasibility().root();
}

PlannedPlacement PlacementService::plan(const topo::AppTopology& topology,
                                        Algorithm algorithm) const {
  return plan(topology, algorithm, scheduler_->defaults());
}

PlannedPlacement PlacementService::plan(const topo::AppTopology& topology,
                                        Algorithm algorithm,
                                        const SearchConfig& config) const {
  // Snapshot under the shared lock, search with no lock held: the commit
  // critical section stays short no matter how expensive the search is.
  const dc::Occupancy snap = snapshot();
  PlannedPlacement planned;
  planned.epoch = snap.version();
  planned.placement =
      scheduler_->plan_against(snap, topology, algorithm, config);
  return planned;
}

PlacementService::CommitOutcome PlacementService::try_commit(
    const topo::AppTopology& topology, PlannedPlacement& planned,
    std::uint64_t* commit_epoch) {
  return try_commit_with(topology, planned, Committer{}, commit_epoch);
}

PlacementService::CommitOutcome PlacementService::try_commit_with(
    const topo::AppTopology& topology, PlannedPlacement& planned,
    const Committer& committer, std::uint64_t* commit_epoch) {
  static util::metrics::Counter& m_conflicts =
      util::metrics::counter("service.conflicts");
  static util::metrics::Counter& m_rejected =
      util::metrics::counter("service.rejected");
  static util::metrics::Summary& m_commit_wait =
      util::metrics::summary("service.commit_wait_seconds");

  Placement& placement = planned.placement;
  if (!placement.feasible || placement.bandwidth_overcommitted) {
    if (placement.feasible && placement.failure_reason.empty()) {
      placement.failure_reason =
          "placement overcommits link bandwidth; not committed";
    }
    m_rejected.inc();
    return CommitOutcome::kRejected;
  }

  util::WallTimer wait_timer;
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  m_commit_wait.observe(wait_timer.elapsed_seconds());

  // The epoch gate: an unchanged version proves no mutation interleaved
  // between snapshot and commit, so the plan's own constraint checks are
  // still authoritative and re-validation can be skipped.  A changed
  // version means a competing commit (or any occupancy mutation) landed —
  // re-verify everything from first principles against the live state.
  if (scheduler_->occupancy().version() != planned.epoch) {
    const auto violations = verify_placement(scheduler_->occupancy(),
                                             topology, placement.assignment);
    if (!violations.empty()) {
      m_conflicts.inc();
      return CommitOutcome::kConflict;
    }
  }

  if (committer) {
    std::string failure;
    if (!committer(placement, failure)) {
      // The committer's refusal is deterministic (re-validation already
      // passed), so a retry would refuse again: reject.
      placement.failure_reason = std::move(failure);
      m_rejected.inc();
      return CommitOutcome::kRejected;
    }
  } else {
    scheduler_->commit(topology, placement);
  }
  placement.committed = true;
  if (commit_epoch != nullptr) {
    *commit_epoch = scheduler_->occupancy().version();
  }
  return CommitOutcome::kCommitted;
}

std::size_t PlacementService::try_commit_batch(
    std::span<BatchCommitMember> batch) {
  static util::metrics::Counter& m_conflicts =
      util::metrics::counter("service.conflicts");
  static util::metrics::Counter& m_rejected =
      util::metrics::counter("service.rejected");
  static util::metrics::Summary& m_commit_wait =
      util::metrics::summary("service.commit_wait_seconds");

  // Deterministic rejects need no lock: infeasible or bandwidth-
  // overcommitted members can never commit no matter what the live
  // occupancy looks like (same pre-filter as try_commit_with).
  std::size_t pending = 0;
  for (BatchCommitMember& member : batch) {
    Placement& placement = member.planned->placement;
    if (!placement.feasible || placement.bandwidth_overcommitted) {
      if (placement.feasible && placement.failure_reason.empty()) {
        placement.failure_reason =
            "placement overcommits link bandwidth; not committed";
      }
      member.outcome = CommitOutcome::kRejected;
      m_rejected.inc();
      continue;
    }
    member.outcome = CommitOutcome::kConflict;  // until proven otherwise
    ++pending;
  }
  if (pending == 0) return 0;

  util::WallTimer wait_timer;
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  m_commit_wait.observe(wait_timer.elapsed_seconds());

  std::size_t committed = 0;
  for (BatchCommitMember& member : batch) {
    if (member.outcome == CommitOutcome::kRejected) continue;
    Placement& placement = member.planned->placement;
    // Per-member epoch gate.  The first member of a fresh-snapshot batch
    // commits without re-validation; its commit bumps the epoch, so every
    // later member is re-verified from first principles against the
    // occupancy its batch predecessors already mutated.
    if (scheduler_->occupancy().version() != member.planned->epoch) {
      const auto violations = verify_placement(
          scheduler_->occupancy(), *member.topology, placement.assignment);
      if (!violations.empty()) {
        member.outcome = CommitOutcome::kConflict;
        m_conflicts.inc();
        continue;
      }
    }
    if (member.committer != nullptr && *member.committer) {
      std::string failure;
      if (!(*member.committer)(placement, failure)) {
        placement.failure_reason = std::move(failure);
        member.outcome = CommitOutcome::kRejected;
        m_rejected.inc();
        continue;
      }
    } else {
      scheduler_->commit(*member.topology, placement);
    }
    placement.committed = true;
    member.outcome = CommitOutcome::kCommitted;
    member.commit_epoch = scheduler_->occupancy().version();
    ++committed;
  }
  return committed;
}

bool PlacementService::release_stack(StackRegistry& registry, StackId id,
                                     bool deactivate_emptied,
                                     std::uint64_t* commit_epoch,
                                     DeployedStack* released) {
  static util::metrics::Counter& m_releases =
      util::metrics::counter("service.stack_releases");
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  // Look up first, remove only after the release succeeded: a throwing
  // release (which would mean corrupted accounting) must not silently drop
  // the registry record.  No one can interleave between the two steps —
  // every lifecycle mutation holds this writer lock.
  std::optional<DeployedStack> stack = registry.get(id);
  if (!stack.has_value()) return false;  // double-release guard
  net::release_placement(scheduler_->occupancy(), *stack->topology,
                         stack->assignment, deactivate_emptied);
  (void)registry.remove(id);
  if (commit_epoch != nullptr) {
    *commit_epoch = scheduler_->occupancy().version();
  }
  if (released != nullptr) *released = std::move(*stack);
  m_releases.inc();
  return true;
}

topo::Resources PlacementService::fail_host(StackRegistry& registry,
                                            dc::HostId host,
                                            std::size_t* stacks_killed,
                                            std::uint64_t* commit_epoch) {
  static util::metrics::Counter& m_failures =
      util::metrics::counter("service.host_failures");
  static util::metrics::Counter& m_evictions =
      util::metrics::counter("service.failure_evictions");
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  dc::Occupancy& occupancy = scheduler_->occupancy();
  // Kill every resident stack outright (the paper's stacks have no
  // per-node restart story; the lifecycle simulator re-submits them as
  // fresh arrivals when configured to).
  std::size_t killed = 0;
  for (const StackId id : registry.stacks_on_host(host)) {
    std::optional<DeployedStack> stack = registry.get(id);
    if (!stack.has_value()) continue;
    net::release_placement(occupancy, *stack->topology, stack->assignment,
                           /*deactivate_emptied=*/true);
    (void)registry.remove(id);
    ++killed;
  }
  // Quarantine: consume all remaining free capacity so no plan, however
  // stale its snapshot, can pass the commit-gate re-validation with a node
  // on this host while it is down.
  const topo::Resources quarantine = occupancy.available(host);
  occupancy.add_host_load(host, quarantine);
  if (stacks_killed != nullptr) *stacks_killed = killed;
  if (commit_epoch != nullptr) *commit_epoch = occupancy.version();
  m_failures.inc();
  m_evictions.add(killed);
  return quarantine;
}

void PlacementService::repair_host(dc::HostId host,
                                   const topo::Resources& quarantine,
                                   std::uint64_t* commit_epoch) {
  static util::metrics::Counter& m_repairs =
      util::metrics::counter("service.host_repairs");
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  dc::Occupancy& occupancy = scheduler_->occupancy();
  occupancy.remove_host_load(host, quarantine);
  occupancy.deactivate_if_idle(host);
  if (commit_epoch != nullptr) *commit_epoch = occupancy.version();
  m_repairs.inc();
}

std::size_t PlacementService::try_commit_migration(
    MigrationBatch& batch, StackRegistry& registry,
    std::uint64_t* commit_epoch) {
  static util::metrics::Counter& m_batches =
      util::metrics::counter("service.migration_batches");
  static util::metrics::Counter& m_moves =
      util::metrics::counter("service.migration_moves");
  static util::metrics::Counter& m_conflicts =
      util::metrics::counter("service.migration_conflicts");
  static util::metrics::Summary& m_commit_wait =
      util::metrics::summary("service.commit_wait_seconds");

  util::WallTimer wait_timer;
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  m_commit_wait.observe(wait_timer.elapsed_seconds());
  m_batches.inc();

  dc::Occupancy& occupancy = scheduler_->occupancy();
  const dc::DataCenter& datacenter = occupancy.datacenter();
  std::size_t committed = 0;
  std::uint64_t epoch = 0;
  for (MigrationMember& member : batch.members) {
    member.outcome = CommitOutcome::kConflict;
    if (member.topology == nullptr ||
        member.from.size() != member.topology->node_count() ||
        member.to.size() != member.topology->node_count()) {
      member.outcome = CommitOutcome::kRejected;
      continue;
    }
    // The migration's epoch gate: the stack must still be live with the
    // exact assignment the plan moved from.  A racing departure, failure
    // eviction, or competing migration invalidates the member, never the
    // batch.
    const std::optional<DeployedStack> live = registry.get(member.stack_id);
    if (!live.has_value() || live->assignment != member.from) {
      m_conflicts.inc();
      continue;
    }
    // Structural constraints of the target are occupancy-independent and
    // deterministic — a violation can never commit, so it rejects.
    if (!verify_assignment_structure(datacenter, *member.topology, member.to)
             .empty()) {
      member.outcome = CommitOutcome::kRejected;
      continue;
    }
    // Capacity and bandwidth are validated by staging the relocation in one
    // delta: each moved node releases its old load/paths before (in op
    // order) its new ones are reserved, so the member's own resources are
    // netted — the reason verify_placement (which charges the new demand on
    // top of the still-occupied old spots) cannot gate migrations.
    dc::OccupancyDelta delta(occupancy);
    net::Assignment working = member.from;
    bool feasible = true;
    try {
      for (topo::NodeId n = 0; n < member.topology->node_count(); ++n) {
        if (working[n] == member.to[n]) continue;
        const topo::Node& node = member.topology->node(n);
        delta.remove_host_load(working[n], node.requirements);
        delta.add_host_load(member.to[n], node.requirements);
        for (const topo::Neighbor& nb : member.topology->neighbors(n)) {
          const dc::PathLinks old_path =
              datacenter.path_between(working[n], working[nb.node]);
          for (const dc::LinkId link : old_path) {
            delta.release_link(link, nb.bandwidth_mbps);
          }
          const dc::PathLinks new_path =
              datacenter.path_between(member.to[n], working[nb.node]);
          for (const dc::LinkId link : new_path) {
            delta.reserve_link(link, nb.bandwidth_mbps);
          }
        }
        working[n] = member.to[n];
      }
      occupancy.apply_delta(delta);
    } catch (const std::invalid_argument&) {
      // Capacity/bandwidth reservation failure (the only exception the
      // staged mutators throw for a target that no longer fits): the delta
      // never flushed, so the member is a benign conflict.  Anything else
      // (std::out_of_range from a corrupt host id, std::logic_error from a
      // stale delta) is a programming error and must propagate, not be
      // miscounted as contention.
      feasible = false;
    }
    if (!feasible) {
      m_conflicts.inc();
      continue;
    }
    std::size_t moved = 0;
    for (topo::NodeId n = 0; n < member.topology->node_count(); ++n) {
      if (member.from[n] != member.to[n]) {
        occupancy.deactivate_if_idle(member.from[n]);
        ++moved;
      }
    }
    // Cannot fail: the stack was re-checked above and nothing can
    // interleave under the writer lock.
    (void)registry.update_assignment(member.stack_id, member.from,
                                     member.to);
    member.outcome = CommitOutcome::kCommitted;
    epoch = occupancy.version();
    ++committed;
    m_moves.add(moved);
  }
  if (commit_epoch != nullptr) *commit_epoch = epoch;
  return committed;
}

ServiceResult PlacementService::place(const topo::AppTopology& topology,
                                      Algorithm algorithm) {
  return place_with(topology, algorithm, scheduler_->defaults(), Committer{});
}

ServiceResult PlacementService::place(const topo::AppTopology& topology,
                                      Algorithm algorithm,
                                      const SearchConfig& config) {
  return place_with(topology, algorithm, config, Committer{});
}

ServiceResult PlacementService::place_with(const topo::AppTopology& topology,
                                           Algorithm algorithm,
                                           const SearchConfig& config,
                                           const Committer& committer) {
  static util::metrics::Counter& m_requests =
      util::metrics::counter("service.requests");
  static util::metrics::Counter& m_committed =
      util::metrics::counter("service.committed");
  static util::metrics::Counter& m_retries =
      util::metrics::counter("service.retries");
  m_requests.inc();

  ServiceResult result;
  for (std::uint32_t attempt = 0;; ++attempt) {
    PlannedPlacement planned = plan(topology, algorithm, config);
    result.plan_epoch = planned.epoch;
    if (post_plan_hook_) post_plan_hook_(attempt);
    if (!planned.placement.feasible) {
      result.placement = std::move(planned.placement);
      return result;
    }
    const CommitOutcome outcome =
        try_commit_with(topology, planned, committer, &result.commit_epoch);
    if (outcome != CommitOutcome::kConflict) {
      if (outcome == CommitOutcome::kCommitted) m_committed.inc();
      result.placement = std::move(planned.placement);
      return result;
    }
    ++result.conflicts;
    if (attempt >= config.service_max_conflict_retries) {
      result.placement = std::move(planned.placement);
      result.placement.committed = false;
      result.placement.failure_reason =
          "commit conflict: " +
          std::to_string(config.service_max_conflict_retries) +
          " replan(s) exhausted";
      return result;
    }
    ++result.retries;
    m_retries.inc();
  }
}

}  // namespace ostro::core
