#include "core/service.h"

#include <utility>

#include "core/verify.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::core {

std::uint64_t PlacementService::epoch() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return scheduler_->occupancy().version();
}

dc::Occupancy PlacementService::snapshot() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return scheduler_->occupancy();
}

PlannedPlacement PlacementService::plan(const topo::AppTopology& topology,
                                        Algorithm algorithm) const {
  return plan(topology, algorithm, scheduler_->defaults());
}

PlannedPlacement PlacementService::plan(const topo::AppTopology& topology,
                                        Algorithm algorithm,
                                        const SearchConfig& config) const {
  // Snapshot under the shared lock, search with no lock held: the commit
  // critical section stays short no matter how expensive the search is.
  const dc::Occupancy snap = snapshot();
  PlannedPlacement planned;
  planned.epoch = snap.version();
  planned.placement =
      scheduler_->plan_against(snap, topology, algorithm, config);
  return planned;
}

PlacementService::CommitOutcome PlacementService::try_commit(
    const topo::AppTopology& topology, PlannedPlacement& planned,
    std::uint64_t* commit_epoch) {
  return try_commit_with(topology, planned, Committer{}, commit_epoch);
}

PlacementService::CommitOutcome PlacementService::try_commit_with(
    const topo::AppTopology& topology, PlannedPlacement& planned,
    const Committer& committer, std::uint64_t* commit_epoch) {
  static util::metrics::Counter& m_conflicts =
      util::metrics::counter("service.conflicts");
  static util::metrics::Counter& m_rejected =
      util::metrics::counter("service.rejected");
  static util::metrics::Summary& m_commit_wait =
      util::metrics::summary("service.commit_wait_seconds");

  Placement& placement = planned.placement;
  if (!placement.feasible || placement.bandwidth_overcommitted) {
    if (placement.feasible && placement.failure_reason.empty()) {
      placement.failure_reason =
          "placement overcommits link bandwidth; not committed";
    }
    m_rejected.inc();
    return CommitOutcome::kRejected;
  }

  util::WallTimer wait_timer;
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  m_commit_wait.observe(wait_timer.elapsed_seconds());

  // The epoch gate: an unchanged version proves no mutation interleaved
  // between snapshot and commit, so the plan's own constraint checks are
  // still authoritative and re-validation can be skipped.  A changed
  // version means a competing commit (or any occupancy mutation) landed —
  // re-verify everything from first principles against the live state.
  if (scheduler_->occupancy().version() != planned.epoch) {
    const auto violations = verify_placement(scheduler_->occupancy(),
                                             topology, placement.assignment);
    if (!violations.empty()) {
      m_conflicts.inc();
      return CommitOutcome::kConflict;
    }
  }

  if (committer) {
    std::string failure;
    if (!committer(placement, failure)) {
      // The committer's refusal is deterministic (re-validation already
      // passed), so a retry would refuse again: reject.
      placement.failure_reason = std::move(failure);
      m_rejected.inc();
      return CommitOutcome::kRejected;
    }
  } else {
    scheduler_->commit(topology, placement);
  }
  placement.committed = true;
  if (commit_epoch != nullptr) {
    *commit_epoch = scheduler_->occupancy().version();
  }
  return CommitOutcome::kCommitted;
}

std::size_t PlacementService::try_commit_batch(
    std::span<BatchCommitMember> batch) {
  static util::metrics::Counter& m_conflicts =
      util::metrics::counter("service.conflicts");
  static util::metrics::Counter& m_rejected =
      util::metrics::counter("service.rejected");
  static util::metrics::Summary& m_commit_wait =
      util::metrics::summary("service.commit_wait_seconds");

  // Deterministic rejects need no lock: infeasible or bandwidth-
  // overcommitted members can never commit no matter what the live
  // occupancy looks like (same pre-filter as try_commit_with).
  std::size_t pending = 0;
  for (BatchCommitMember& member : batch) {
    Placement& placement = member.planned->placement;
    if (!placement.feasible || placement.bandwidth_overcommitted) {
      if (placement.feasible && placement.failure_reason.empty()) {
        placement.failure_reason =
            "placement overcommits link bandwidth; not committed";
      }
      member.outcome = CommitOutcome::kRejected;
      m_rejected.inc();
      continue;
    }
    member.outcome = CommitOutcome::kConflict;  // until proven otherwise
    ++pending;
  }
  if (pending == 0) return 0;

  util::WallTimer wait_timer;
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  m_commit_wait.observe(wait_timer.elapsed_seconds());

  std::size_t committed = 0;
  for (BatchCommitMember& member : batch) {
    if (member.outcome == CommitOutcome::kRejected) continue;
    Placement& placement = member.planned->placement;
    // Per-member epoch gate.  The first member of a fresh-snapshot batch
    // commits without re-validation; its commit bumps the epoch, so every
    // later member is re-verified from first principles against the
    // occupancy its batch predecessors already mutated.
    if (scheduler_->occupancy().version() != member.planned->epoch) {
      const auto violations = verify_placement(
          scheduler_->occupancy(), *member.topology, placement.assignment);
      if (!violations.empty()) {
        member.outcome = CommitOutcome::kConflict;
        m_conflicts.inc();
        continue;
      }
    }
    if (member.committer != nullptr && *member.committer) {
      std::string failure;
      if (!(*member.committer)(placement, failure)) {
        placement.failure_reason = std::move(failure);
        member.outcome = CommitOutcome::kRejected;
        m_rejected.inc();
        continue;
      }
    } else {
      scheduler_->commit(*member.topology, placement);
    }
    placement.committed = true;
    member.outcome = CommitOutcome::kCommitted;
    member.commit_epoch = scheduler_->occupancy().version();
    ++committed;
  }
  return committed;
}

ServiceResult PlacementService::place(const topo::AppTopology& topology,
                                      Algorithm algorithm) {
  return place_with(topology, algorithm, scheduler_->defaults(), Committer{});
}

ServiceResult PlacementService::place(const topo::AppTopology& topology,
                                      Algorithm algorithm,
                                      const SearchConfig& config) {
  return place_with(topology, algorithm, config, Committer{});
}

ServiceResult PlacementService::place_with(const topo::AppTopology& topology,
                                           Algorithm algorithm,
                                           const SearchConfig& config,
                                           const Committer& committer) {
  static util::metrics::Counter& m_requests =
      util::metrics::counter("service.requests");
  static util::metrics::Counter& m_committed =
      util::metrics::counter("service.committed");
  static util::metrics::Counter& m_retries =
      util::metrics::counter("service.retries");
  m_requests.inc();

  ServiceResult result;
  for (std::uint32_t attempt = 0;; ++attempt) {
    PlannedPlacement planned = plan(topology, algorithm, config);
    result.plan_epoch = planned.epoch;
    if (post_plan_hook_) post_plan_hook_(attempt);
    if (!planned.placement.feasible) {
      result.placement = std::move(planned.placement);
      return result;
    }
    const CommitOutcome outcome =
        try_commit_with(topology, planned, committer, &result.commit_epoch);
    if (outcome != CommitOutcome::kConflict) {
      if (outcome == CommitOutcome::kCommitted) m_committed.inc();
      result.placement = std::move(planned.placement);
      return result;
    }
    ++result.conflicts;
    if (attempt >= config.service_max_conflict_retries) {
      result.placement = std::move(planned.placement);
      result.placement.committed = false;
      result.placement.failure_reason =
          "commit conflict: " +
          std::to_string(config.service_max_conflict_retries) +
          " replan(s) exhausted";
      return result;
    }
    ++result.retries;
    m_retries.inc();
  }
}

}  // namespace ostro::core
