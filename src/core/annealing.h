// Simulated-annealing placement baseline.
//
// The paper's related work (Section V) notes that evolutionary approaches —
// simulated annealing, genetic algorithms, particle swarms — can solve this
// class of placement problem but make it "non-trivial to guarantee an
// optimal solution in a tight time bound".  This module implements the
// strongest such baseline (simulated annealing over full assignments,
// seeded with EG's placement) so the claim can be measured:
// bench_vs_annealing runs SA and DBA* under identical wall-clock budgets.
//
// Moves pick a random node and a random feasible host; the whole candidate
// assignment is revalidated through the same constraint engine the search
// algorithms use, so SA competes on exactly the same problem.
#pragma once

#include <cstdint>

#include "core/types.h"
#include "datacenter/occupancy.h"

namespace ostro::core {

struct AnnealingConfig {
  /// Wall-clock budget (seconds); the best feasible assignment seen is
  /// returned when it expires.
  double deadline_seconds = 1.0;
  /// Initial temperature on the (normalized, in [0,1]) utility scale.
  double initial_temperature = 0.05;
  /// Multiplicative cooling applied every `moves_per_temperature` moves.
  double cooling = 0.98;
  int moves_per_temperature = 64;
  std::uint64_t seed = 42;

  void validate() const;  ///< throws std::invalid_argument on bad values
};

/// Runs simulated annealing for `annealing.deadline_seconds`, seeded with
/// EG's placement (random feasible completion when EG fails).  Objective
/// weights come from `config`.  Returns an infeasible Placement when no
/// feasible assignment was found at all.
[[nodiscard]] Placement simulated_annealing(const dc::Occupancy& base,
                                            const topo::AppTopology& topology,
                                            const SearchConfig& config,
                                            const AnnealingConfig& annealing);

}  // namespace ostro::core
