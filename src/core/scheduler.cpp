#include "core/scheduler.h"

#include <stdexcept>

#include "core/astar.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "net/reservation.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::core {
namespace {

[[nodiscard]] Placement to_placement(bool feasible, std::string failure,
                                     PartialPlacement state,
                                     SearchStats stats, double runtime) {
  Placement out;
  out.feasible = feasible;
  out.failure_reason = std::move(failure);
  out.stats = stats;
  out.stats.runtime_seconds = runtime;
  if (feasible) {
    out.assignment = state.assignment();
    out.utility = state.utility_committed();
    out.reserved_bandwidth_mbps = state.ubw();
    out.new_active_hosts = state.new_active_hosts();
    out.hosts_used = static_cast<int>(state.used_hosts().size());
    out.bandwidth_overcommitted = state.has_link_overcommit();
  }
  return out;
}

}  // namespace

Placement place_topology(const dc::Occupancy& base,
                         const topo::AppTopology& topology,
                         Algorithm algorithm, const SearchConfig& config,
                         const net::Assignment* pinned,
                         util::ThreadPool* pool) {
  config.validate();
  static util::metrics::Counter& m_plans =
      util::metrics::counter("scheduler.plans");
  static util::metrics::Counter& m_infeasible =
      util::metrics::counter("scheduler.plans_infeasible");
  static util::metrics::Summary& m_plan_seconds =
      util::metrics::summary("scheduler.plan_seconds");
  const util::metrics::ScopedTimer phase_timer(m_plan_seconds);
  m_plans.inc();
  util::WallTimer timer;

  const Objective objective(topology, base.datacenter(), config);
  PartialPlacement state(topology, base, objective);

  // Pre-place pinned nodes (online adaptation, Section IV-E).  Pins go
  // through the same constraint checks as search decisions.
  if (pinned != nullptr && !pinned->empty()) {
    if (pinned->size() != topology.node_count()) {
      throw std::invalid_argument("place_topology: pinned size mismatch");
    }
    for (topo::NodeId v = 0; v < pinned->size(); ++v) {
      const dc::HostId host = (*pinned)[v];
      if (host == dc::kInvalidHost) continue;
      if (!state.can_place(v, host)) {
        m_infeasible.inc();
        Placement out;
        out.feasible = false;
        out.failure_reason = "pinned node " + topology.node(v).name +
                             " no longer fits its host";
        out.stats.runtime_seconds = timer.elapsed_seconds();
        return out;
      }
      state.place(v, host);
    }
  }

  switch (algorithm) {
    case Algorithm::kEg:
    case Algorithm::kEgC:
    case Algorithm::kEgBw: {
      const auto order = (algorithm == Algorithm::kEgBw)
                             ? bandwidth_sort_order(topology)
                             : eg_sort_order(topology);
      GreedyOutcome outcome =
          run_greedy(algorithm, std::move(state), order, pool,
                     config.use_estimate_context, config.use_candidate_index);
      if (!outcome.feasible) m_infeasible.inc();
      return to_placement(outcome.feasible, std::move(outcome.failure),
                          std::move(outcome.state), outcome.stats,
                          timer.elapsed_seconds());
    }
    case Algorithm::kBaStar:
    case Algorithm::kDbaStar: {
      const bool deadline_bounded = algorithm == Algorithm::kDbaStar;
      AStarOutcome outcome =
          run_astar(std::move(state), config, deadline_bounded, pool);
      if (!outcome.feasible) m_infeasible.inc();
      return to_placement(outcome.feasible, std::move(outcome.failure),
                          std::move(outcome.state), outcome.stats,
                          timer.elapsed_seconds());
    }
  }
  throw std::logic_error("place_topology: unknown algorithm");
}

OstroScheduler::OstroScheduler(const dc::DataCenter& datacenter,
                               SearchConfig defaults)
    : datacenter_(&datacenter),
      occupancy_(datacenter),
      defaults_(defaults),
      pool_(std::make_unique<util::ThreadPool>(defaults.threads)) {
  defaults_.validate();
}

Placement OstroScheduler::plan(const topo::AppTopology& topology,
                               Algorithm algorithm) const {
  return plan(topology, algorithm, defaults_);
}

Placement OstroScheduler::plan(const topo::AppTopology& topology,
                               Algorithm algorithm,
                               const SearchConfig& config) const {
  return place_topology(occupancy_, topology, algorithm, config, nullptr,
                        pool_.get());
}

Placement OstroScheduler::plan(const PlacementRequest& request,
                               Algorithm algorithm) const {
  if (request.topology == nullptr) {
    throw std::invalid_argument("OstroScheduler::plan: null topology");
  }
  return place_topology(occupancy_, *request.topology, algorithm,
                        request.config,
                        request.pinned.empty() ? nullptr : &request.pinned,
                        pool_.get());
}

Placement OstroScheduler::deploy(const topo::AppTopology& topology,
                                 Algorithm algorithm) {
  return deploy(topology, algorithm, defaults_);
}

Placement OstroScheduler::deploy(const topo::AppTopology& topology,
                                 Algorithm algorithm,
                                 const SearchConfig& config) {
  Placement placement = place_topology(occupancy_, topology, algorithm,
                                       config, nullptr, pool_.get());
  if (placement.feasible && !placement.bandwidth_overcommitted) {
    commit(topology, placement);
  }
  return placement;
}

void OstroScheduler::commit(const topo::AppTopology& topology,
                            const Placement& placement) {
  static util::metrics::Counter& m_commits =
      util::metrics::counter("scheduler.commits");
  static util::metrics::Summary& m_commit_seconds =
      util::metrics::summary("scheduler.commit_seconds");
  const util::metrics::ScopedTimer phase_timer(m_commit_seconds);
  m_commits.inc();
  if (!placement.feasible) {
    throw std::invalid_argument(
        "OstroScheduler::commit: placement is infeasible");
  }
  if (placement.bandwidth_overcommitted) {
    throw std::invalid_argument(
        "OstroScheduler::commit: placement overcommits link bandwidth");
  }
  net::commit_placement(occupancy_, topology, placement.assignment);
}

}  // namespace ostro::core
