#include "core/scheduler.h"

#include <stdexcept>
#include <utility>

#include "core/astar.h"
#include "core/budget.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "net/reservation.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::core {
namespace {

[[nodiscard]] Placement to_placement(bool feasible, std::string failure,
                                     PartialPlacement state,
                                     SearchStats stats, double runtime) {
  Placement out;
  out.feasible = feasible;
  out.failure_reason = std::move(failure);
  out.stats = stats;
  out.stats.runtime_seconds = runtime;
  if (feasible) {
    out.assignment = state.assignment();
    out.utility = state.utility_committed();
    out.reserved_bandwidth_mbps = state.ubw();
    out.new_active_hosts = state.new_active_hosts();
    out.hosts_used = static_cast<int>(state.used_hosts().size());
    out.bandwidth_overcommitted = state.has_link_overcommit();
  }
  return out;
}

/// BA*/DBA* under BudgetMode::kAuto: the bounded-retry ladder of DESIGN.md
/// section 8.  Runs the search under the controller's budget; a valve-fire
/// failure (hit_open_limit, no feasible placement) is retried with a
/// geometrically widened budget, and when the ladder is exhausted the plan
/// falls back to greedy EG completions (EG order, then bandwidth order) —
/// today's silent quality cliff becomes a bounded, observable retry path.
[[nodiscard]] AStarOutcome run_astar_adaptive(const PartialPlacement& state,
                                              const SearchConfig& config,
                                              bool deadline_bounded,
                                              util::ThreadPool* pool,
                                              BudgetController& controller) {
  const topo::AppTopology& topology = state.topology();
  const std::size_t free_nodes =
      topology.node_count() - state.placed_count();
  BudgetDecision decision = controller.decide(
      free_nodes, state.datacenter().host_count(), config);
  SearchConfig attempt_config = config;
  std::uint32_t retries = 0;
  for (;;) {
    attempt_config.max_open_paths = decision.max_open_paths;
    attempt_config.dba_beam_width = decision.beam_width;
    AStarOutcome outcome = run_astar(PartialPlacement(state), attempt_config,
                                     deadline_bounded, pool);
    controller.observe(decision, outcome.stats);
    outcome.stats.budget_retries = retries;
    if (outcome.feasible || !outcome.stats.hit_open_limit) return outcome;
    if (const auto widened = controller.widen(decision, config)) {
      decision = *widened;
      ++retries;
      continue;
    }
    // Ladder exhausted: complete greedily.  EG's own sort order first; the
    // bandwidth-first order is a genuinely different decision sequence and
    // occasionally completes where EG's dead-ends.
    controller.note_greedy_fallback();
    AStarOutcome fallback(state);
    fallback.stats = outcome.stats;
    for (const auto& order :
         {eg_sort_order(topology), bandwidth_sort_order(topology)}) {
      GreedyOutcome eg =
          run_greedy(Algorithm::kEg, PartialPlacement(state), order, pool,
                     config.use_estimate_context, config.use_candidate_index);
      fallback.stats.candidates_evaluated += eg.stats.candidates_evaluated;
      fallback.stats.heuristic_calls += eg.stats.heuristic_calls;
      ++fallback.stats.eg_reruns;
      if (eg.feasible) {
        fallback.feasible = true;
        fallback.state = std::move(eg.state);
        break;
      }
      fallback.failure = std::move(eg.failure);
    }
    if (!fallback.feasible && fallback.failure.empty()) {
      fallback.failure = "open-queue limit hit; no solution";
    }
    fallback.stats.budget_retries = retries;
    fallback.stats.hit_open_limit = true;
    fallback.stats.truncated = true;
    return fallback;
  }
}

}  // namespace

Placement place_topology(const dc::Occupancy& base,
                         const topo::AppTopology& topology,
                         Algorithm algorithm, const SearchConfig& config,
                         const net::Assignment* pinned,
                         util::ThreadPool* pool, BudgetController* budget) {
  config.validate();
  static util::metrics::Counter& m_plans =
      util::metrics::counter("scheduler.plans");
  static util::metrics::Counter& m_infeasible =
      util::metrics::counter("scheduler.plans_infeasible");
  static util::metrics::Summary& m_plan_seconds =
      util::metrics::summary("scheduler.plan_seconds");
  const util::metrics::ScopedTimer phase_timer(m_plan_seconds);
  m_plans.inc();
  util::WallTimer timer;

  const Objective objective(topology, base.datacenter(), config);
  PartialPlacement state(topology, base, objective, config.use_prune_labels);

  // Pre-place pinned nodes (online adaptation, Section IV-E).  Pins go
  // through the same constraint checks as search decisions.
  if (pinned != nullptr && !pinned->empty()) {
    if (pinned->size() != topology.node_count()) {
      throw std::invalid_argument("place_topology: pinned size mismatch");
    }
    for (topo::NodeId v = 0; v < pinned->size(); ++v) {
      const dc::HostId host = (*pinned)[v];
      if (host == dc::kInvalidHost) continue;
      if (!state.can_place(v, host)) {
        m_infeasible.inc();
        Placement out;
        out.feasible = false;
        out.failure_reason = "pinned node " + topology.node(v).name +
                             " no longer fits its host";
        out.stats.runtime_seconds = timer.elapsed_seconds();
        return out;
      }
      state.place(v, host);
    }
  }

  switch (algorithm) {
    case Algorithm::kEg:
    case Algorithm::kEgC:
    case Algorithm::kEgBw: {
      const auto order = (algorithm == Algorithm::kEgBw)
                             ? bandwidth_sort_order(topology)
                             : eg_sort_order(topology);
      GreedyOutcome outcome =
          run_greedy(algorithm, std::move(state), order, pool,
                     config.use_estimate_context, config.use_candidate_index);
      if (!outcome.feasible) m_infeasible.inc();
      return to_placement(outcome.feasible, std::move(outcome.failure),
                          std::move(outcome.state), outcome.stats,
                          timer.elapsed_seconds());
    }
    case Algorithm::kBaStar:
    case Algorithm::kDbaStar: {
      const bool deadline_bounded = algorithm == Algorithm::kDbaStar;
      AStarOutcome outcome = [&] {
        if (config.budget_mode == BudgetMode::kFixed) {
          // Bit-identical to the pre-controller behavior (and to the paper
          // benches): the configured constants, one attempt, no controller.
          return run_astar(std::move(state), config, deadline_bounded, pool);
        }
        BudgetController ephemeral;
        return run_astar_adaptive(state, config, deadline_bounded, pool,
                                  budget != nullptr ? *budget : ephemeral);
      }();
      if (!outcome.feasible) m_infeasible.inc();
      return to_placement(outcome.feasible, std::move(outcome.failure),
                          std::move(outcome.state), outcome.stats,
                          timer.elapsed_seconds());
    }
  }
  throw std::logic_error("place_topology: unknown algorithm");
}

OstroScheduler::OstroScheduler(const dc::DataCenter& datacenter,
                               SearchConfig defaults)
    : datacenter_(&datacenter),
      occupancy_(datacenter),
      defaults_(defaults),
      pool_(std::make_unique<util::ThreadPool>(defaults.threads)) {
  defaults_.validate();
}

Placement OstroScheduler::plan(const topo::AppTopology& topology,
                               Algorithm algorithm) const {
  return plan(topology, algorithm, defaults_);
}

Placement OstroScheduler::plan(const topo::AppTopology& topology,
                               Algorithm algorithm,
                               const SearchConfig& config) const {
  return place_topology(occupancy_, topology, algorithm, config, nullptr,
                        pool_.get(), &budget_controller_);
}

Placement OstroScheduler::plan(const PlacementRequest& request,
                               Algorithm algorithm) const {
  if (request.topology == nullptr) {
    throw std::invalid_argument("OstroScheduler::plan: null topology");
  }
  return place_topology(occupancy_, *request.topology, algorithm,
                        request.config,
                        request.pinned.empty() ? nullptr : &request.pinned,
                        pool_.get(), &budget_controller_);
}

Placement OstroScheduler::plan_against(const dc::Occupancy& snapshot,
                                       const topo::AppTopology& topology,
                                       Algorithm algorithm,
                                       const SearchConfig& config) const {
  if (&snapshot.datacenter() != datacenter_) {
    throw std::invalid_argument(
        "OstroScheduler::plan_against: snapshot of another data center");
  }
  return place_topology(snapshot, topology, algorithm, config, nullptr,
                        pool_.get(), &budget_controller_);
}

Placement OstroScheduler::deploy(const topo::AppTopology& topology,
                                 Algorithm algorithm) {
  return deploy(topology, algorithm, defaults_);
}

Placement OstroScheduler::deploy(const topo::AppTopology& topology,
                                 Algorithm algorithm,
                                 const SearchConfig& config) {
  Placement placement = place_topology(occupancy_, topology, algorithm,
                                       config, nullptr, pool_.get(),
                                       &budget_controller_);
  if (placement.feasible && !placement.bandwidth_overcommitted) {
    commit(topology, placement);
    placement.committed = true;
  } else if (placement.feasible) {
    placement.failure_reason =
        "placement overcommits link bandwidth; not committed";
  }
  return placement;
}

void OstroScheduler::commit(const topo::AppTopology& topology,
                            const Placement& placement) {
  static util::metrics::Counter& m_commits =
      util::metrics::counter("scheduler.commits");
  static util::metrics::Summary& m_commit_seconds =
      util::metrics::summary("scheduler.commit_seconds");
  const util::metrics::ScopedTimer phase_timer(m_commit_seconds);
  m_commits.inc();
  if (!placement.feasible) {
    throw std::invalid_argument(
        "OstroScheduler::commit: placement is infeasible");
  }
  if (placement.bandwidth_overcommitted) {
    throw std::invalid_argument(
        "OstroScheduler::commit: placement overcommits link bandwidth");
  }
  net::commit_placement(occupancy_, topology, placement.assignment);
}

}  // namespace ostro::core
