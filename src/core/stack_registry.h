// Registry of deployed stacks: which application topologies are live and
// where their nodes sit (DESIGN.md section 13).
//
// The placement layers below are deliberately stateless about tenancy — an
// Occupancy only knows aggregate loads, not which stack put them there.
// Lifecycle operations need the reverse map: a departure must release
// exactly the resources its stack committed, a host failure must find the
// stacks resident on the host, and a defragmentation planner must know the
// current assignment of every candidate stack.  StackRegistry is that map.
//
// Thread safety: every method takes an internal mutex, so concurrent reads
// are safe on their own.  Mutations that must stay atomic *with respect to
// the occupancy* (deploy+add, release+remove, migrate+update) are sequenced
// by PlacementService's writer lock, which the lifecycle entry points
// (release_stack / fail_host / try_commit_migration) hold around the
// occupancy mutation and the registry update together.  Lock order is
// always service-writer-lock -> registry-mutex; the registry never calls
// back into the service.
//
// remove() returns the stack's record exactly once: the second caller gets
// nullopt, which is the double-release guard — a departure racing a
// host-failure kill of the same stack releases its resources exactly once.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/reservation.h"
#include "topology/app_topology.h"

namespace ostro::core {

/// Identifier the caller assigns at deploy time (unique per live stack).
using StackId = std::uint64_t;

/// One live stack: its topology (shared, immutable) and where it sits.
struct DeployedStack {
  StackId id = 0;
  std::shared_ptr<const topo::AppTopology> topology;
  net::Assignment assignment;
};

class StackRegistry {
 public:
  StackRegistry() = default;
  StackRegistry(const StackRegistry&) = delete;
  StackRegistry& operator=(const StackRegistry&) = delete;

  /// Registers a deployed stack; throws std::invalid_argument when the id
  /// is already live or the assignment size mismatches the topology.
  void add(StackId id, std::shared_ptr<const topo::AppTopology> topology,
           net::Assignment assignment);

  /// Unregisters and returns the stack, or nullopt when it is not (or no
  /// longer) live.  Exactly one caller per id gets the record — the
  /// double-release guard.
  [[nodiscard]] std::optional<DeployedStack> remove(StackId id);

  /// Replaces the live assignment (a committed migration).  Returns false
  /// when the stack is no longer live or `expected` no longer matches the
  /// current assignment (a racing migration or departure won); the caller
  /// must then drop its plan.
  [[nodiscard]] bool update_assignment(StackId id,
                                       const net::Assignment& expected,
                                       net::Assignment next);

  /// Copy of one stack's record; nullopt when not live.
  [[nodiscard]] std::optional<DeployedStack> get(StackId id) const;

  /// Copies of every live stack, ordered by id (deterministic iteration
  /// for planners and tests).
  [[nodiscard]] std::vector<DeployedStack> snapshot() const;

  /// Ids of stacks with at least one node on `host`, ordered by id.
  [[nodiscard]] std::vector<StackId> stacks_on_host(dc::HostId host) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<StackId, DeployedStack> stacks_;
};

}  // namespace ostro::core
