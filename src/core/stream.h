// Streaming admission front end — the sustained-traffic shape of the
// placement service.
//
// PlacementService answers one-shot concurrent requests; a production
// control plane faces a *stream*: requests arrive continuously, carry
// priorities and admission deadlines, and the binding question is not "can
// this plan commit" but "how long does a request wait before the engine
// even looks at it".  Two pieces turn the service into that front end:
//
//  * AdmissionQueue — a bounded multi-class priority queue.  push() fails
//    immediately when the queue is full (admission control: overload is
//    answered with a fast reject, never with unbounded queueing delay) or
//    after close().  pop_batch() drains strictly by priority class (high
//    before normal before low), FIFO within a class.
//
//  * StreamingService — dispatcher threads that drain the queue in
//    batches: pop up to SearchConfig::stream_max_batch requests, drop
//    members whose admission deadline expired while queued, take ONE
//    occupancy snapshot, plan every member against it with no lock held,
//    then validate-and-commit the whole batch under a single writer-lock
//    acquisition (PlacementService::try_commit_batch).  Members whose
//    validation fails — because a batch predecessor or a concurrent
//    request consumed their resources — are *spilled* back into the
//    per-request conflict-replan ladder (PlacementService::place_with),
//    so batching is a throughput optimization that can delay but never
//    wrong a request.
//
// Every request resolves exactly once through its std::future, including
// on shutdown (close() stops admissions, queued work still drains) and on
// planning exceptions (delivered through the future, never allowed to
// escape a dispatcher thread).
//
// Telemetry under "stream.": submitted / rejected_queue_full /
// deadline_misses / batches / spills / committed / failed counters,
// queue_depth / batch_size / admission_wait_seconds summaries.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/service.h"

namespace ostro::core {

/// Admission priority classes; higher drains first, FIFO within a class.
enum class StreamPriority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr std::size_t kStreamPriorityCount = 3;

[[nodiscard]] const char* to_string(StreamPriority priority) noexcept;
/// Parses "low" / "normal" / "high" (case-insensitive); throws
/// std::invalid_argument otherwise.
[[nodiscard]] StreamPriority parse_stream_priority(const std::string& name);

/// One queued placement request.
struct StreamRequest {
  topo::AppTopology topology;
  Algorithm algorithm = Algorithm::kEg;
  StreamPriority priority = StreamPriority::kNormal;
  /// Admission deadline: the longest this request may wait *queued*, in
  /// seconds (<= 0 = none).  A request whose deadline passes before a
  /// dispatcher picks it up completes as kExpired without ever planning —
  /// a late placement answer is treated as worthless, per-request.
  double deadline_seconds = 0.0;
  /// Optional commit step run under the writer lock after validation (the
  /// Heat wrapper's annotate+deploy; see PlacementService::Committer).
  /// Empty = the default scheduler commit.
  PlacementService::Committer committer;
};

/// Terminal state of a streamed request.
enum class StreamStatus : std::uint8_t {
  kCommitted,  ///< planned and committed
  kFailed,     ///< planned, not committed (infeasible, overcommitted,
               ///< committer refusal, or conflict ladder exhausted)
  kExpired,    ///< admission deadline passed while queued; never planned
  kRejected,   ///< refused at submit: queue full, or service closed
};

[[nodiscard]] const char* to_string(StreamStatus status) noexcept;

/// What the stream did with one request.
struct StreamResult {
  StreamStatus status = StreamStatus::kRejected;
  /// Placement details; meaningful for kCommitted/kFailed (for kExpired and
  /// kRejected only `placement.failure_reason` is set).
  ServiceResult service;
  /// Admission wait: submit() to dispatcher pickup, seconds.
  double wait_seconds = 0.0;
  /// Members planned together in this request's batch (itself included);
  /// 0 when the request never reached the planning phase.
  std::uint32_t batch_size = 0;
  /// 1 when the batch commit conflicted and the request was spilled into
  /// the per-request conflict-replan ladder.
  std::uint32_t spills = 0;
};

/// Bounded multi-class FIFO with blocking batched pops.  Thread-safe.
class AdmissionQueue {
 public:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    StreamRequest request;
    std::promise<StreamResult> promise;
    Clock::time_point enqueued{};
    /// Absolute expiry; Clock::time_point::max() when no deadline.
    Clock::time_point deadline = Clock::time_point::max();
  };

  explicit AdmissionQueue(std::size_t capacity);

  /// Moves `entry` in and returns true; returns false (entry untouched)
  /// when the queue is full or closed.
  [[nodiscard]] bool push(Entry& entry);

  /// Pops up to `max_batch` entries in priority order.  With `wait`,
  /// blocks until at least one entry is available or the queue is closed
  /// *and* drained (then returns empty — the consumer-exit signal).
  /// Without `wait`, returns empty immediately when nothing is queued.
  [[nodiscard]] std::vector<Entry> pop_batch(std::size_t max_batch,
                                             bool wait = true);

  /// Stops admissions and wakes every blocked consumer.  Queued entries
  /// remain poppable: close-then-drain is the shutdown protocol.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool closed() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<Entry>, kStreamPriorityCount> classes_;
  std::size_t size_ = 0;
  std::size_t capacity_;
  bool closed_ = false;
};

/// The streaming front end.  One instance per PlacementService; the
/// stream_* knobs of the SearchConfig given at construction size the queue
/// and the dispatcher pool, and the same config is the search
/// configuration every request is planned with.
class StreamingService {
 public:
  /// `service` must outlive the streaming service.  With
  /// `start_dispatchers` (the default) a pool of
  /// config.stream_dispatch_threads dispatcher threads drains the queue;
  /// with false, nothing runs until dispatch_once() is called — the
  /// deterministic mode the interleaving tests (and any caller that wants
  /// to pump the queue itself) use.  `config.validate()` is enforced.
  StreamingService(PlacementService& service, SearchConfig config,
                   bool start_dispatchers = true);
  ~StreamingService();  ///< shutdown()

  StreamingService(const StreamingService&) = delete;
  StreamingService& operator=(const StreamingService&) = delete;

  /// Enqueues a request.  The future resolves exactly once: with the
  /// placement outcome, kExpired, or — immediately, when the queue is full
  /// or the service closed — kRejected.
  [[nodiscard]] std::future<StreamResult> submit(StreamRequest request);

  /// Stops admissions; already-queued requests still drain.
  void close();
  /// close(), then joins the dispatchers; in manual mode (no dispatcher
  /// threads) drains the queue inline first.  Idempotent.
  void shutdown();

  /// Manual pump: form and process one batch.  Returns the number of
  /// requests completed (0 = queue empty).  Only meaningful in manual
  /// mode; racing it against a running dispatcher pool is safe but makes
  /// batch composition nondeterministic.
  std::size_t dispatch_once();

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] const SearchConfig& config() const noexcept { return config_; }

 private:
  void dispatcher_loop();
  std::size_t process_batch(std::vector<AdmissionQueue::Entry> batch);

  PlacementService* service_;
  SearchConfig config_;
  AdmissionQueue queue_;
  std::vector<std::thread> dispatchers_;
  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace ostro::core
