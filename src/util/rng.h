// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in this repository (workload generation,
// non-uniform availability, DBA* pruning decisions) flows through Rng so
// that a fixed seed reproduces a run bit-for-bit.  The generator is
// xoshiro256** seeded via splitmix64, which is fast, has a 2^256-1 period,
// and passes BigCrush; <random> engines are avoided because their streams
// are not portable across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace ostro::util {

/// splitmix64 step; used to expand a 64-bit seed into generator state and as
/// a standalone mixing function for hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic random source (xoshiro256**).
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling (Lemire) to avoid modulo bias.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Bernoulli trial with probability `p` (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Uniformly chosen element. Throws std::invalid_argument when empty.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Samples `k` distinct indices from [0, n) in selection order.
  /// Requires k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

  /// Derives an independent child generator; stream `i` is stable for a
  /// given parent seed (used to give each simulation run its own stream).
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace ostro::util
