// Wall-clock timing and deadlines.
//
// DBA* (Section III-C of the paper) is driven by a wall-clock deadline T;
// Deadline encapsulates the "time left" bookkeeping it performs.
#pragma once

#include <chrono>

namespace ostro::util {

/// Monotonic stopwatch started at construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// A wall-clock budget of `budget_seconds` starting at construction.
/// A non-positive budget means "no deadline" (never expires).
class Deadline {
 public:
  explicit Deadline(double budget_seconds) noexcept
      : budget_(budget_seconds) {}

  [[nodiscard]] static Deadline unlimited() noexcept { return Deadline(0.0); }

  [[nodiscard]] bool is_unlimited() const noexcept { return budget_ <= 0.0; }
  [[nodiscard]] double budget_seconds() const noexcept { return budget_; }
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return timer_.elapsed_seconds();
  }

  /// Seconds remaining; a large positive number when unlimited, clamped at 0.
  [[nodiscard]] double remaining_seconds() const noexcept {
    if (is_unlimited()) return 1e18;
    const double left = budget_ - timer_.elapsed_seconds();
    return left > 0.0 ? left : 0.0;
  }

  [[nodiscard]] bool expired() const noexcept {
    return !is_unlimited() && timer_.elapsed_seconds() >= budget_;
  }

 private:
  double budget_;
  WallTimer timer_;
};

}  // namespace ostro::util
