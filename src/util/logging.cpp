#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace ostro::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

[[nodiscard]] const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  throw std::invalid_argument("unknown log level: " + std::string(text));
}

namespace detail {

void log_line(LogLevel level, std::string_view component,
              const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count();
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%lld.%03lld] %s [%.*s] %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), level_tag(level),
               static_cast<int>(component.size()), component.data(),
               message.c_str());
}

}  // namespace detail
}  // namespace ostro::util
