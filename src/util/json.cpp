#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ostro::util {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    for (;;) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      object[std::move(key)] = parse_value();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(object));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(array));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': append_unicode_escape(out); break;
          default: fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    // UTF-8 encode a BMP code point (surrogate pairs are rejected; the Heat
    // templates this parser serves are ASCII).
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs unsupported");
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || end != last) fail("malformed number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("not a bool");
  return bool_;
}

double Json::as_number() const {
  if (!is_number()) throw JsonError("not a number");
  return number_;
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  const double r = std::nearbyint(d);
  if (r != d || std::abs(d) > 9.2e18) throw JsonError("not an integer");
  return static_cast<std::int64_t>(r);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("not a string");
  return string_;
}

const JsonArray& Json::as_array() const {
  if (!is_array()) throw JsonError("not an array");
  return array_;
}

const JsonObject& Json::as_object() const {
  if (!is_object()) throw JsonError("not an object");
  return object_;
}

JsonArray& Json::as_array() {
  if (!is_array()) throw JsonError("not an array");
  return array_;
}

JsonObject& Json::as_object() {
  if (!is_object()) throw JsonError("not an object");
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) throw JsonError("missing key: " + key);
  return it->second;
}

bool Json::contains(const std::string& key) const noexcept {
  return is_object() && object_.find(key) != object_.end();
}

const Json& Json::get_or(const std::string& key,
                         const Json& fallback) const noexcept {
  if (!is_object()) return fallback;
  const auto it = object_.find(key);
  return it == object_.end() ? fallback : it->second;
}

double Json::number_or(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  return at(key).as_number();
}

std::string Json::string_or(const std::string& key, std::string fallback) const {
  if (!contains(key)) return fallback;
  return at(key).as_string();
}

const Json& Json::at(std::size_t index) const {
  const auto& array = as_array();
  if (index >= array.size()) throw JsonError("array index out of range");
  return array[index];
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  throw JsonError("size() on non-container");
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case JsonType::kNull: out += "null"; break;
    case JsonType::kBool: out += bool_ ? "true" : "false"; break;
    case JsonType::kNumber: append_number(out, number_); break;
    case JsonType::kString: append_escaped(out, string_); break;
    case JsonType::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& element : array_) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        element.dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_indent(depth);
      out.push_back(']');
      break;
    }
    case JsonType::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        append_escaped(out, key);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        value.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_indent(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonType::kNull: return true;
    case JsonType::kBool: return a.bool_ == b.bool_;
    case JsonType::kNumber: return a.number_ == b.number_;
    case JsonType::kString: return a.string_ == b.string_;
    case JsonType::kArray: return a.array_ == b.array_;
    case JsonType::kObject: return a.object_ == b.object_;
  }
  return false;
}

}  // namespace ostro::util
