// ASCII table / CSV emitter used by the benchmark harness to print the rows
// and series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ostro::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `decimals` digits.
  [[nodiscard]] static std::string cell(double value, int decimals = 2);
  [[nodiscard]] static std::string cell(std::int64_t value);

  /// Column-aligned fixed-width rendering with a header rule.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ostro::util
