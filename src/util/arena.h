// Allocation-free building blocks for the pooled search core (DESIGN.md
// section 11): a chunked bump arena in the spirit of warthog's cpool, flat
// open-addressing hash tables with power-of-two probing, an epoch-stamped
// set whose clear() is O(1), and a bit set.  All of them are reset — not
// freed — between uses, so a long-lived search thread reaches a steady
// state in which the hot loop performs zero heap allocations.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace ostro::util {

/// Mixes a 64-bit key into a well-distributed hash (stateless splitmix64
/// finalizer).  Shared by the flat tables below so probe sequences stay
/// consistent across them.
[[nodiscard]] constexpr std::uint64_t hash_mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Chunked bump allocator: memory is carved from geometrically sized slabs
/// and never returned individually.  reset() rewinds the bump pointers and
/// keeps every slab, so a warm arena serves subsequent plans without
/// touching the system allocator.  Objects placed in the arena are NOT
/// destroyed by reset()/the destructor — callers that store non-trivial
/// types must run destructors themselves (SearchArena does).
class ChunkArena {
 public:
  explicit ChunkArena(std::size_t chunk_bytes = 64 * 1024) noexcept
      : chunk_bytes_(chunk_bytes) {}

  /// Returns `bytes` of storage aligned to `align` (power of two).
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// Rewinds to empty while keeping every slab for reuse.
  void reset() noexcept;

  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return bytes_reserved_;
  }
  [[nodiscard]] std::size_t bytes_used() const noexcept { return bytes_used_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // first chunk with free space
  std::size_t chunk_bytes_;
  std::size_t bytes_reserved_ = 0;
  std::size_t bytes_used_ = 0;
};

/// Open-addressing set of 64-bit keys with O(1) clear: each slot carries the
/// epoch in which it was written, and clear() just bumps the epoch.  Used
/// for the closed set (canonical signatures) and the per-expansion
/// host-equivalence dedup, both of which would otherwise pay a rehash or a
/// full memset per use.
class StampedSet64 {
 public:
  /// Inserts `key`; returns true when it was not present this epoch.
  bool insert(std::uint64_t key);
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept;
  void clear() noexcept;
  void reserve(std::size_t expected);
  /// Test hook: jumps the current epoch so wraparound regression tests can
  /// exercise the overflow guard in clear() without ~4 billion iterations.
  /// Entries written under earlier epochs read as absent afterwards.
  void debug_force_epoch(std::uint32_t epoch) noexcept { epoch_ = epoch; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return keys_.capacity() * sizeof(std::uint64_t) +
           epochs_.capacity() * sizeof(std::uint32_t);
  }

 private:
  void grow(std::size_t min_slots);

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> epochs_;
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;  // slots - 1; 0 means "no table yet"
};

/// Fixed-universe bit set (hosts, nodes).  clear() is a word-sized memset
/// over capacity reserved once from the universe size.
class BitSet {
 public:
  void resize(std::size_t bits);
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i) noexcept { words_[i >> 6] |= 1ULL << (i & 63); }
  void clear() noexcept;
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Open-addressing map from 32-bit keys to V with linear probing over a
/// power-of-two table.  Every slot packs (epoch << 32 | key) into one
/// 64-bit word: a probe is a single load-and-compare, and — like
/// StampedSet64 — clear() just bumps the epoch in O(1), with a slot whose
/// epoch half is stale reading as empty.  Per-state tables can therefore
/// be cleared and rebuilt (the COW flatten does this once per expansion)
/// without an O(capacity) sweep, and a dense slot index makes iteration
/// O(size) instead of O(capacity).  All users map 32-bit ids (hosts,
/// links, racks, nodes); keys >= 2^32 are rejected by assert.
/// reserve() sizes the table once from a known universe bound so
/// steady-state inserts never rehash.
template <typename V>
class FlatMap64 {
 public:
  [[nodiscard]] const V* find(std::uint64_t key) const noexcept {
    if (mask_ == 0) return nullptr;
    const std::uint64_t target = tag(key);
    std::size_t i = hash_mix64(key) & mask_;
    while (true) {
      const std::uint64_t word = words_[i];
      if (word == target) return &vals_[i];
      if ((word >> 32) != epoch_) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  [[nodiscard]] V* find(std::uint64_t key) noexcept {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  /// Returns the slot for `key`, default-constructing it when absent;
  /// `inserted` reports which happened.
  V& get_or_insert(std::uint64_t key, bool& inserted) {
    if (size_ * 2 >= slots()) grow(slots() == 0 ? 16 : slots() * 2);
    const std::uint64_t target = tag(key);
    std::size_t i = hash_mix64(key) & mask_;
    while (true) {
      const std::uint64_t word = words_[i];
      if (word == target) {
        inserted = false;
        return vals_[i];
      }
      if ((word >> 32) != epoch_) {
        words_[i] = target;
        vals_[i] = V{};
        dense_.push_back(static_cast<std::uint32_t>(i));
        ++size_;
        inserted = true;
        return vals_[i];
      }
      i = (i + 1) & mask_;
    }
  }

  /// Inserts (key, value) only when the key is absent; returns whether the
  /// insert happened.  This is the newest-wins primitive of the COW flatten
  /// walk: levels are visited newest first, so the first write sticks.
  bool insert_if_absent(std::uint64_t key, const V& value) {
    bool inserted = false;
    V& slot = get_or_insert(key, inserted);
    if (inserted) slot = value;
    return inserted;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const std::uint32_t i : dense_) {
      f(words_[i] & 0xffffffffULL, vals_[i]);
    }
  }

  void clear() noexcept {
    if (++epoch_ == 0) {
      // Epoch wrapped: every stale stamp would read as current.  Scrub once
      // per ~4 billion clears and restart at epoch 1.
      std::fill(words_.begin(), words_.end(), 0ULL);
      epoch_ = 1;
    }
    dense_.clear();
    size_ = 0;
  }

  /// Test hook: jumps the current epoch so wraparound regression tests can
  /// exercise the overflow guard in clear() without ~4 billion iterations.
  /// Entries written under earlier epochs read as absent afterwards.
  void debug_force_epoch(std::uint32_t epoch) noexcept { epoch_ = epoch; }

  /// Sizes the table for `expected` entries at <= 50% load.
  void reserve(std::size_t expected) {
    std::size_t want = 16;
    while (want < expected * 2) want *= 2;
    if (want > slots()) grow(want);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t) +
           vals_.capacity() * sizeof(V) +
           dense_.capacity() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::size_t slots() const noexcept { return words_.size(); }

  /// (epoch << 32 | key): the one-word occupied-this-epoch slot encoding.
  [[nodiscard]] std::uint64_t tag(std::uint64_t key) const noexcept {
    assert(key < (1ULL << 32) && "FlatMap64 keys must be 32-bit ids");
    return (static_cast<std::uint64_t>(epoch_) << 32) | key;
  }

  void grow(std::size_t new_slots) {
    std::vector<std::uint64_t> old_words = std::move(words_);
    std::vector<V> old_vals = std::move(vals_);
    std::vector<std::uint32_t> old_dense = std::move(dense_);
    words_.assign(new_slots, 0ULL);
    vals_.assign(new_slots, V{});
    dense_.clear();
    dense_.reserve(new_slots / 2 + 1);
    epoch_ = 1;
    mask_ = new_slots - 1;
    size_ = 0;
    for (const std::uint32_t i : old_dense) {
      bool inserted = false;
      get_or_insert(old_words[i] & 0xffffffffULL, inserted) = old_vals[i];
    }
  }

  std::vector<std::uint64_t> words_;
  std::vector<V> vals_;
  std::vector<std::uint32_t> dense_;
  std::uint32_t epoch_ = 1;  // slot epochs start at 1; 0 = never written
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ostro::util
