#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace ostro::util {
namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range: any value works.
  const std::uint64_t offset = (span == 0) ? next() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
}

double Rng::uniform01() noexcept {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  std::uint64_t sm = state_[0] ^ (0xd1b54a32d192ed03ULL * (stream + 1));
  return Rng(splitmix64(sm));
}

}  // namespace ostro::util
