// Small string helpers shared by parsers and the CLI layer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ostro::util {

/// Splits on `sep`; empty fields are kept ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Lower-cases ASCII letters.
[[nodiscard]] std::string to_lower(std::string_view text);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a comma-separated list of integers ("25,50,75"); throws
/// std::invalid_argument on malformed input.
[[nodiscard]] std::vector<int> parse_int_list(std::string_view text);

}  // namespace ostro::util
