// Minimal JSON document model, parser and printer.
//
// Used for the QoS-enhanced Heat templates (src/openstack) and for CSV/JSON
// output from the benchmark harness.  Implemented here rather than pulling a
// third-party dependency; supports the full JSON grammar except for \u
// surrogate pairs outside the BMP (sufficient for templates, which are
// ASCII).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ostro::util {

class Json;

using JsonArray = std::vector<Json>;
// std::map keeps object keys ordered, which makes printed output stable.
using JsonObject = std::map<std::string, Json>;

enum class JsonType { kNull, kBool, kNumber, kString, kArray, kObject };

/// Raised on malformed documents (parse) and type mismatches (accessors).
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable-ish JSON value with checked accessors.
class Json {
 public:
  Json() noexcept : type_(JsonType::kNull) {}
  Json(std::nullptr_t) noexcept : type_(JsonType::kNull) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) noexcept : type_(JsonType::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Json(double d) noexcept : type_(JsonType::kNumber), number_(d) {}  // NOLINT(google-explicit-constructor)
  Json(int i) noexcept : type_(JsonType::kNumber), number_(i) {}  // NOLINT(google-explicit-constructor)
  Json(std::int64_t i) noexcept  // NOLINT(google-explicit-constructor)
      : type_(JsonType::kNumber), number_(static_cast<double>(i)) {}
  Json(std::string s)  // NOLINT(google-explicit-constructor)
      : type_(JsonType::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(JsonType::kString), string_(s) {}  // NOLINT(google-explicit-constructor)
  Json(JsonArray a)  // NOLINT(google-explicit-constructor)
      : type_(JsonType::kArray), array_(std::move(a)) {}
  Json(JsonObject o)  // NOLINT(google-explicit-constructor)
      : type_(JsonType::kObject), object_(std::move(o)) {}

  /// Parses a complete document; trailing non-whitespace is an error.
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] JsonType type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == JsonType::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == JsonType::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == JsonType::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == JsonType::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == JsonType::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == JsonType::kObject; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< number, checked integral
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] JsonObject& as_object();

  /// Object member access; throws JsonError when absent or not an object.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const noexcept;
  /// Member if present, otherwise `fallback`.
  [[nodiscard]] const Json& get_or(const std::string& key,
                                   const Json& fallback) const noexcept;
  /// Convenience typed getters with defaults (object contexts).
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

  /// Array element access; throws JsonError when out of range / not array.
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const;  ///< array or object element count

  /// Compact single-line serialization.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indent.
  [[nodiscard]] std::string pretty() const;

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  JsonType type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace ostro::util
