// Fixed-size worker pool.
//
// EG evaluates the (usage + heuristic) utility of every candidate host in
// parallel (Section III-A of the paper, "EG computes the utility in
// parallel"); ThreadPool::parallel_for is the primitive it uses.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ostro::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future reports its result or exception.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs body(i) for i in [0, n), partitioned into contiguous blocks across
  /// the pool, and blocks until all complete.  Executes inline when the pool
  /// has a single worker or n is small.  Exceptions from the body are
  /// rethrown (the first one encountered, in block order) — but only after
  /// every block has finished, so `body` and the caller's captures are never
  /// referenced past this call's lifetime.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// parallel_for variant whose body additionally receives the index of the
  /// executing block ("slot", in [0, size())).  At most one task runs per
  /// slot at any time, so callers can hand each slot its own scratch buffer
  /// and reuse it across iterations without synchronization.  The inline
  /// path uses slot 0.
  void parallel_for_slots(
      std::size_t n,
      const std::function<void(std::size_t slot, std::size_t i)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Spawns `count` one-shot worker threads running body(worker_index),
/// joins them ALL, then rethrows the first exception any worker raised
/// (in worker-index order).  This is the safe shape for client-side
/// fan-out: a bare `std::thread` lambda turns an escaping exception into
/// std::terminate mid-run, and — as with ThreadPool::parallel_for —
/// nothing is rethrown until every worker has finished, so `body` and the
/// caller's captures are never referenced past this call's lifetime.
void run_workers(std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace ostro::util
