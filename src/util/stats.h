// Lightweight descriptive statistics used by the benchmark harness and the
// experiment runner (mean/stddev over repeated runs, percentiles over
// per-flow throughput samples, etc.).
#pragma once

#include <cstddef>
#include <vector>

namespace ostro::util {

/// Streaming accumulator (Welford) for count/mean/variance/min/max.
/// Suitable when samples need not be retained.
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retaining sample set with percentile queries.
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, p in [0, 100]. Throws when empty or p
  /// out of range.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

}  // namespace ostro::util
