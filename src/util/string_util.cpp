#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace ostro::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    throw std::runtime_error("format: encoding error");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<int> parse_int_list(std::string_view text) {
  std::vector<int> out;
  for (const auto& piece : split(text, ',')) {
    const auto trimmed = trim(piece);
    if (trimmed.empty()) {
      throw std::invalid_argument("parse_int_list: empty element");
    }
    std::size_t consumed = 0;
    const int value = std::stoi(std::string(trimmed), &consumed);
    if (consumed != trimmed.size()) {
      throw std::invalid_argument("parse_int_list: malformed element: " +
                                  std::string(trimmed));
    }
    out.push_back(value);
  }
  return out;
}

}  // namespace ostro::util
