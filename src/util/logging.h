// Minimal leveled logger.
//
// The scheduler runs inside benchmarks and tests where stdout is the data
// channel, so logging goes to stderr and is off (Warn) by default.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ostro::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive).
/// Throws std::invalid_argument on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view text);

namespace detail {
void log_line(LogLevel level, std::string_view component,
              const std::string& message);
}

/// Stream-style log statement:  Log(LogLevel::kInfo, "core") << "msg " << x;
/// The line is emitted (with level tag, component and timestamp) when the
/// temporary is destroyed.
class Log {
 public:
  Log(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log() {
    if (level_ >= log_level()) {
      detail::log_line(level_, component_, stream_.str());
    }
  }

  template <typename T>
  Log& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace ostro::util
