// Declarative CLI argument parser for the examples and benchmark binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms, typed
// defaults, and generated --help text.  Unknown options are an error so that
// typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ostro::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declares options; must happen before parse().
  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, std::string default_value,
                  const std::string& help);

  /// Parses argv.  Returns false (after printing usage) when --help was
  /// requested; throws std::invalid_argument on malformed input.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  /// Positional arguments left after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  Option& declare(const std::string& name, Kind kind, const std::string& help);
  [[nodiscard]] const Option& lookup(const std::string& name, Kind kind) const;
  void assign(Option& option, const std::string& name,
              std::string_view value);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace ostro::util
