// Search observability: monotonic counters, value summaries, RAII phase
// timers, and a process-global registry with JSON export.
//
// The placement hot paths (EG candidate scoring, BA*/DBA* expansions, the
// reservation layer) are instrumented with these; every future perf PR reads
// the same numbers, so the layer is designed to be cheap enough to leave on:
//
//  * Counter::add and Summary::observe are relaxed atomics behind a single
//    relaxed-load enabled() check — low single-digit nanoseconds per event.
//  * Registry lookups take a mutex, so instrumentation sites cache the
//    returned reference in a function-local static (instrument pointers are
//    stable for the lifetime of the process; the registry never erases).
//  * Compile with -DOSTRO_METRICS=0 to compile every instrument down to a
//    no-op, or call metrics::set_enabled(false) to turn collection off at
//    runtime (the default is on).
//
// Naming convention: "<subsystem>.<event>" with snake_case events, e.g.
// "astar.nodes_expanded", "greedy.candidates_evaluated".  Timers are
// summaries in seconds and end in "_seconds".  See README.md ("Metrics")
// for the full catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/timer.h"

#ifndef OSTRO_METRICS
#define OSTRO_METRICS 1  ///< compile-time kill switch (0 = compiled out)
#endif

namespace ostro::util::metrics {

namespace detail {
/// Runtime collection switch; read with a relaxed load on every event.
[[nodiscard]] std::atomic<bool>& enabled_flag() noexcept;
}  // namespace detail

/// True when instruments record events (compile-time and runtime switches).
[[nodiscard]] inline bool enabled() noexcept {
#if OSTRO_METRICS
  return detail::enabled_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Turns collection on/off process-wide.  Reads of existing values and
/// reset() keep working while disabled.
inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Monotonic event counter (thread-safe, relaxed).
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Streaming count/sum/min/max over observed values (thread-safe, relaxed).
/// Snapshots taken under concurrent observation may mix values from
/// different instants across fields; that is acceptable for telemetry.
class Summary {
 public:
  void observe(double value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;  ///< 0 when count == 0
    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// RAII phase timer: observes the elapsed wall-clock seconds into a Summary
/// when the scope exits.
class ScopedTimer {
 public:
  explicit ScopedTimer(Summary& summary) noexcept : summary_(&summary) {}
  ~ScopedTimer() { summary_->observe(timer_.elapsed_seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Summary* summary_;
  WallTimer timer_;
};

/// Name -> instrument registry.  Instruments are created on first use and
/// live for the registry's lifetime (references remain valid; cache them).
class Registry {
 public:
  /// The process-global registry every instrumentation site uses.
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Summary& summary(std::string_view name);

  /// Current value of a counter, 0 when it was never touched.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  /// Snapshot of a summary, all-zero when it was never touched.
  [[nodiscard]] Summary::Snapshot summary_snapshot(
      std::string_view name) const;

  /// Zeroes every instrument (registrations and references survive).
  void reset() noexcept;

  /// {"counters": {name: value}, "summaries": {name: {count, sum, min,
  /// max, mean}}} — counters as integers, summary values as numbers.
  [[nodiscard]] Json to_json() const;

 private:
  mutable std::mutex mutex_;
  // node-based maps: pointers are stable across inserts, keys stay sorted
  // for deterministic JSON output.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Summary>, std::less<>> summaries_;
};

/// Shorthands for Registry::global(); cache the result at the call site:
///   static auto& c = metrics::counter("astar.nodes_expanded");
[[nodiscard]] inline Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}
[[nodiscard]] inline Summary& summary(std::string_view name) {
  return Registry::global().summary(name);
}

}  // namespace ostro::util::metrics
