#include "util/arena.h"

namespace ostro::util {

void* ChunkArena::allocate(std::size_t bytes, std::size_t align) {
  for (; current_ < chunks_.size(); ++current_) {
    Chunk& chunk = chunks_[current_];
    const std::size_t aligned = (chunk.used + align - 1) & ~(align - 1);
    if (aligned + bytes <= chunk.size) {
      bytes_used_ += (aligned - chunk.used) + bytes;
      chunk.used = aligned + bytes;
      return chunk.data.get() + aligned;
    }
  }
  // A request larger than the standard slab gets a slab of its own; the
  // alignment slack is covered because operator new[] is already aligned to
  // std::max_align_t and `align` never exceeds it for the pooled types.
  const std::size_t size = std::max(chunk_bytes_, bytes + align);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  bytes_reserved_ += size;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  Chunk& fresh = chunks_.back();
  const std::uintptr_t base =
      reinterpret_cast<std::uintptr_t>(fresh.data.get());
  const std::size_t aligned = ((base + align - 1) & ~(align - 1)) - base;
  fresh.used = aligned + bytes;
  bytes_used_ += fresh.used;
  return fresh.data.get() + aligned;
}

void ChunkArena::reset() noexcept {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  current_ = 0;
  bytes_used_ = 0;
}

bool StampedSet64::insert(std::uint64_t key) {
  if (mask_ == 0 || size_ * 2 >= keys_.size()) {
    grow(keys_.empty() ? 1024 : keys_.size() * 2);
  }
  std::size_t i = hash_mix64(key) & mask_;
  while (true) {
    if (epochs_[i] != epoch_) {
      keys_[i] = key;
      epochs_[i] = epoch_;
      ++size_;
      return true;
    }
    if (keys_[i] == key) return false;
    i = (i + 1) & mask_;
  }
}

bool StampedSet64::contains(std::uint64_t key) const noexcept {
  if (mask_ == 0) return false;
  std::size_t i = hash_mix64(key) & mask_;
  while (true) {
    if (epochs_[i] != epoch_) return false;
    if (keys_[i] == key) return true;
    i = (i + 1) & mask_;
  }
}

void StampedSet64::clear() noexcept {
  if (++epoch_ == 0) {
    // Epoch wrapped: every stale stamp would read as current.  Scrub once
    // per ~4 billion clears and restart at epoch 1.
    std::fill(epochs_.begin(), epochs_.end(), 0U);
    epoch_ = 1;
  }
  size_ = 0;
}

void StampedSet64::reserve(std::size_t expected) {
  std::size_t want = 1024;
  while (want < expected * 2) want *= 2;
  if (want > keys_.size()) grow(want);
}

void StampedSet64::grow(std::size_t min_slots) {
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint32_t> old_epochs = std::move(epochs_);
  const std::uint32_t old_epoch = epoch_;
  keys_.assign(min_slots, 0);
  epochs_.assign(min_slots, 0);
  mask_ = min_slots - 1;
  epoch_ = 1;
  size_ = 0;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_epochs[i] == old_epoch) insert(old_keys[i]);
  }
}

void BitSet::resize(std::size_t bits) { words_.resize((bits + 63) / 64, 0); }

void BitSet::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0ULL);
}

}  // namespace ostro::util
