#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/string_util.h"

namespace ostro::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: no headers");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::cell(double value, int decimals) {
  return format("%.*f", decimals, value);
}

std::string TablePrinter::cell(std::int64_t value) {
  return std::to_string(value);
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      const std::string& cell_text = cells[c];
      if (cell_text.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell_text) {
          if (ch == '"') os << "\"\"";
          else os << ch;
        }
        os << '"';
      } else {
        os << cell_text;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ostro::util
