#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace ostro::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = size();
  // Below ~2 items per worker the dispatch overhead dominates; run inline.
  if (workers <= 1 || n < workers * 2) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t blocks = std::min(workers, n);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  // Wait for EVERY block before rethrowing.  Rethrowing from the first
  // failed future while later blocks are still running would unwind the
  // caller's stack under the workers' feet: they hold a reference to `body`
  // (and through it the caller's captures), which dangles the moment this
  // frame is gone.  All blocks must be finished — successfully or not —
  // before an exception may escape.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_slots(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = size();
  if (workers <= 1 || n < workers * 2) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  const std::size_t blocks = std::min(workers, n);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(submit([&body, b, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(b, i);
    }));
  }
  // Same exception discipline as parallel_for: every block must finish
  // before rethrowing, or the workers' reference to `body` dangles.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void run_workers(std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  std::vector<std::exception_ptr> errors(count);
  std::vector<std::thread> workers;
  workers.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    workers.emplace_back([&body, &errors, t] {
      try {
        body(t);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace ostro::util
