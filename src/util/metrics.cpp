#include "util/metrics.h"

namespace ostro::util::metrics {

namespace detail {

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}

}  // namespace detail

namespace {

/// fetch-min/-max via a CAS loop (std::atomic<double> has no fetch_min).
void update_min(std::atomic<double>& slot, double value) noexcept {
  double current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void update_max(std::atomic<double>& slot, double value) noexcept {
  double current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Summary::observe(double value) noexcept {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add; relaxed is fine, the fields are only
  // read together in snapshots that tolerate tearing.
  sum_.fetch_add(value, std::memory_order_relaxed);
  update_min(min_, value);
  update_max(max_, value);
}

Summary::Snapshot Summary::snapshot() const noexcept {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Summary::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Summary& Registry::summary(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = summaries_.find(name);
  if (it != summaries_.end()) return *it->second;
  return *summaries_.emplace(std::string(name), std::make_unique<Summary>())
              .first->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

Summary::Snapshot Registry::summary_snapshot(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = summaries_.find(name);
  return it == summaries_.end() ? Summary::Snapshot{} : it->second->snapshot();
}

void Registry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, summary] : summaries_) summary->reset();
}

Json Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonObject counters;
  for (const auto& [name, counter] : counters_) {
    counters.emplace(name,
                     Json(static_cast<std::int64_t>(counter->value())));
  }
  JsonObject summaries;
  for (const auto& [name, summary] : summaries_) {
    const Summary::Snapshot snap = summary->snapshot();
    JsonObject entry;
    entry.emplace("count", Json(static_cast<std::int64_t>(snap.count)));
    entry.emplace("sum", Json(snap.sum));
    entry.emplace("min", Json(snap.min));
    entry.emplace("max", Json(snap.max));
    entry.emplace("mean", Json(snap.mean()));
    summaries.emplace(name, Json(std::move(entry)));
  }
  JsonObject root;
  root.emplace("counters", Json(std::move(counters)));
  root.emplace("summaries", Json(std::move(summaries)));
  return Json(std::move(root));
}

}  // namespace ostro::util::metrics
