#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ostro::util {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double Accumulator::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

void Samples::add(double x) {
  values_.push_back(x);
  dirty_ = true;
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max: empty");
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::ensure_sorted() const {
  if (dirty_ || sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
}

double Samples::percentile(double p) const {
  if (values_.empty()) throw std::logic_error("Samples::percentile: empty");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Samples::percentile: p out of [0,100]");
  }
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

}  // namespace ostro::util
