#include "util/args.h"

#include <cstdio>
#include <stdexcept>

#include "util/string_util.h"

namespace ostro::util {

ArgParser::Option& ArgParser::declare(const std::string& name, Kind kind,
                                      const std::string& help) {
  if (options_.count(name) != 0) {
    throw std::logic_error("ArgParser: duplicate option --" + name);
  }
  order_.push_back(name);
  Option& option = options_[name];
  option.kind = kind;
  option.help = help;
  return option;
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  declare(name, Kind::kFlag, help);
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  declare(name, Kind::kInt, help).int_value = default_value;
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  declare(name, Kind::kDouble, help).double_value = default_value;
}

void ArgParser::add_string(const std::string& name, std::string default_value,
                           const std::string& help) {
  declare(name, Kind::kString, help).string_value = std::move(default_value);
}

void ArgParser::assign(Option& option, const std::string& name,
                       std::string_view value) {
  try {
    switch (option.kind) {
      case Kind::kFlag:
        throw std::invalid_argument("--" + name + " takes no value");
      case Kind::kInt: {
        std::size_t consumed = 0;
        option.int_value = std::stoll(std::string(value), &consumed);
        if (consumed != value.size()) throw std::invalid_argument("junk");
        break;
      }
      case Kind::kDouble: {
        std::size_t consumed = 0;
        option.double_value = std::stod(std::string(value), &consumed);
        if (consumed != value.size()) throw std::invalid_argument("junk");
        break;
      }
      case Kind::kString:
        option.string_value = std::string(value);
        break;
    }
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("invalid value for --" + name + ": " +
                                std::string(value));
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("value out of range for --" + name + ": " +
                                std::string(value));
  }
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string name;
    std::optional<std::string> inline_value;
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(2, eq - 2));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg.substr(2));
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown option --" + name + "\n" + usage());
    }
    Option& option = it->second;
    if (option.kind == Kind::kFlag) {
      if (inline_value) {
        throw std::invalid_argument("--" + name + " takes no value");
      }
      option.flag_value = true;
      continue;
    }
    if (inline_value) {
      assign(option, name, *inline_value);
    } else {
      // A following "--token" is the next option, not this option's value:
      // consuming it would both mis-assign this option and silently
      // swallow the flag ("--commit-out --metrics").  Negative numbers
      // ("-2") only carry a single dash and still parse as values.
      if (i + 1 >= argc || starts_with(argv[i + 1], "--")) {
        throw std::invalid_argument(
            "--" + name + " requires a value (use --" + name +
            "=VALUE for values beginning with \"--\")");
      }
      assign(option, name, argv[++i]);
    }
  }
  return true;
}

const ArgParser::Option& ArgParser::lookup(const std::string& name,
                                           Kind kind) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::logic_error("ArgParser: undeclared option --" + name);
  }
  return it->second;
}

bool ArgParser::flag(const std::string& name) const {
  return lookup(name, Kind::kFlag).flag_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return lookup(name, Kind::kInt).int_value;
}

double ArgParser::get_double(const std::string& name) const {
  return lookup(name, Kind::kDouble).double_value;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).string_value;
}

std::string ArgParser::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& option = options_.at(name);
    std::string default_text;
    switch (option.kind) {
      case Kind::kFlag: default_text = ""; break;
      case Kind::kInt:
        default_text = " (default: " + std::to_string(option.int_value) + ")";
        break;
      case Kind::kDouble:
        default_text = format(" (default: %g)", option.double_value);
        break;
      case Kind::kString:
        default_text = " (default: \"" + option.string_value + "\")";
        break;
    }
    out += format("  --%-20s %s%s\n", name.c_str(), option.help.c_str(),
                  default_text.c_str());
  }
  out += "  --help                 show this message\n";
  return out;
}

}  // namespace ostro::util
