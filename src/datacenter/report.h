// Occupancy introspection for operators: aggregate utilization of the data
// center and per-rack summaries.  The scheduler makes better decisions the
// fuller the picture it has; this report makes that picture visible to a
// human (examples and benches print it, tests assert on its arithmetic).
#pragma once

#include <string>
#include <vector>

#include "datacenter/occupancy.h"

namespace ostro::dc {

struct RackUtilization {
  std::uint32_t rack = 0;
  std::string name;
  std::size_t hosts = 0;
  std::size_t active_hosts = 0;
  double cpu_used = 0.0, cpu_capacity = 0.0;
  double mem_used_gb = 0.0, mem_capacity_gb = 0.0;
  double disk_used_gb = 0.0, disk_capacity_gb = 0.0;
  double host_uplink_used_mbps = 0.0, host_uplink_capacity_mbps = 0.0;
  double tor_used_mbps = 0.0, tor_capacity_mbps = 0.0;
};

struct UtilizationReport {
  std::size_t hosts = 0;
  std::size_t active_hosts = 0;
  double cpu_used = 0.0, cpu_capacity = 0.0;
  double mem_used_gb = 0.0, mem_capacity_gb = 0.0;
  double disk_used_gb = 0.0, disk_capacity_gb = 0.0;
  double bandwidth_reserved_mbps = 0.0;  ///< over all links
  std::vector<RackUtilization> racks;

  /// Fraction helpers (0 when the capacity is 0).
  [[nodiscard]] double cpu_fraction() const noexcept;
  [[nodiscard]] double mem_fraction() const noexcept;
  [[nodiscard]] double disk_fraction() const noexcept;

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string to_string() const;
};

/// Snapshots the utilization of `occupancy`.
[[nodiscard]] UtilizationReport utilization_report(const Occupancy& occupancy);

}  // namespace ostro::dc
