// Hierarchical data-center model T_p (Section II-A-2, Figure 3 of the
// paper): hosts under ToR switches, racks grouped under pod switches, pods
// under a per-datacenter root, and optionally several data centers behind a
// wide-area interconnect.
//
// DataCenter describes the immutable structure and capacities; mutable
// occupancy (what is currently placed where) lives in Occupancy
// (occupancy.h) so that search algorithms can layer cheap deltas on top of a
// shared base state.
//
// Link model: every capacity-carrying uplink is one Link —
//   host -> ToR            (one per host)
//   ToR  -> pod switch     (one per rack)
//   pod  -> DC root        (one per pod)
//   root -> interconnect   (one per data center)
// The path between two hosts climbs to their lowest common level and
// traverses the uplinks of both sides: 0 links on the same host, 2 in the
// same rack, 4 in the same pod, 6 in the same DC, 8 across DCs.  A
// single-layer data center (paper's simulation: ToRs directly under the
// root) is modeled as one pod spanning all racks.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "topology/app_topology.h"
#include "topology/resources.h"

namespace ostro::dc {

using HostId = std::uint32_t;
inline constexpr HostId kInvalidHost = static_cast<HostId>(-1);

/// Flat index over all uplinks; see link layout in DataCenter.
using LinkId = std::uint32_t;

struct Host {
  HostId id = kInvalidHost;
  std::string name;
  std::uint32_t rack = 0;
  std::uint32_t pod = 0;
  std::uint32_t datacenter = 0;
  topo::Resources capacity;
  double uplink_mbps = 0.0;  ///< host-to-ToR link capacity
  /// Hardware capability tags ("ssd", "sriov", "gpu", ...), sorted.  A node
  /// with required_tags may only land on hosts carrying all of them.
  std::vector<std::string> tags;

  /// True when every tag in `required` (sorted) is present.
  [[nodiscard]] bool has_all_tags(
      const std::vector<std::string>& required) const noexcept;
};

struct Rack {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t pod = 0;
  std::uint32_t datacenter = 0;
  double uplink_mbps = 0.0;  ///< ToR-to-pod (or ToR-to-root) capacity
  std::vector<HostId> hosts;
};

struct Pod {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t datacenter = 0;
  double uplink_mbps = 0.0;  ///< pod-to-root capacity
  std::vector<std::uint32_t> racks;
};

struct Site {  // one data center
  std::uint32_t id = 0;
  std::string name;
  double uplink_mbps = 0.0;  ///< root-to-interconnect capacity
  std::vector<std::uint32_t> pods;
};

/// How far apart two hosts are in the hierarchy.
enum class Scope : std::uint8_t {
  kSameHost = 0,
  kSameRack = 1,
  kSamePod = 2,
  kSameSite = 3,
  kCrossSite = 4,
};

/// Physical links a pipe at `scope` traverses (0, 2, 4, 6, 8).
[[nodiscard]] constexpr int hop_count(Scope scope) noexcept {
  return 2 * static_cast<int>(scope);
}

/// Packed per-host ancestor triple.  DataCenterBuilder::build() precomputes
/// one per host so the hot hierarchy queries (scope_between, separated_at)
/// read 12 contiguous bytes instead of chasing the full Host record (which
/// drags its name string and tag vector into the cache line).
struct HostAncestors {
  std::uint32_t rack = 0;
  std::uint32_t pod = 0;
  std::uint32_t site = 0;
};

/// Allocation-free result of DataCenter::path_between: the (at most 8)
/// uplinks a pipe between two hosts traverses, in the same order
/// path_links appends them (host a, host b, ToR a, ToR b, ...).
struct PathLinks {
  std::array<LinkId, 8> links{};
  std::uint32_t count = 0;

  [[nodiscard]] const LinkId* begin() const noexcept { return links.data(); }
  [[nodiscard]] const LinkId* end() const noexcept {
    return links.data() + count;
  }
  [[nodiscard]] std::size_t size() const noexcept { return count; }
  [[nodiscard]] LinkId operator[](std::size_t i) const noexcept {
    return links[i];
  }
};

class DataCenter {
 public:
  [[nodiscard]] const std::vector<Host>& hosts() const noexcept { return hosts_; }
  [[nodiscard]] const std::vector<Rack>& racks() const noexcept { return racks_; }
  [[nodiscard]] const std::vector<Pod>& pods() const noexcept { return pods_; }
  [[nodiscard]] const std::vector<Site>& sites() const noexcept { return sites_; }

  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }
  [[nodiscard]] const Host& host(HostId id) const;
  /// Looks a host up by name; nullopt when absent (linear scan).
  [[nodiscard]] std::optional<HostId> find_host(
      const std::string& name) const noexcept;

  /// Hierarchy distance between two hosts.  O(1): compares the precomputed
  /// ancestor triples, no tree walk.
  [[nodiscard]] Scope scope_between(HostId a, HostId b) const;

  /// True when a and b are on distinct units at `level` (the diversity-zone
  /// separation test of Section II-B-2).  O(1) via the ancestor table.
  [[nodiscard]] bool separated_at(HostId a, HostId b,
                                  topo::DiversityLevel level) const;

  /// Appends the LinkIds a pipe between the two hosts traverses; nothing is
  /// appended when a == b.  Emits from the two precomputed uplink chains —
  /// no tree walk.
  void path_links(HostId a, HostId b, std::vector<LinkId>& out) const;

  /// Allocation-free form of path_links: the links of the a--b pipe in a
  /// fixed-size array.  The hot callers (constraint checks, reservation,
  /// verification) use this to avoid per-call vector churn.
  [[nodiscard]] PathLinks path_between(HostId a, HostId b) const;

  /// Precomputed ancestors of `h` (rack, pod, site).  Unchecked: `h` must
  /// be a valid host id.
  [[nodiscard]] const HostAncestors& ancestors(HostId h) const noexcept {
    return ancestors_[h];
  }

  /// The four uplinks between host `h` and the interconnect root, bottom up
  /// (host->ToR, ToR->pod, pod->root, root->interconnect).  Unchecked.
  [[nodiscard]] std::span<const LinkId, 4> uplink_chain(HostId h) const noexcept {
    return std::span<const LinkId, 4>(&uplink_chains_[std::size_t{h} * 4], 4);
  }

  /// Reference implementations that walk the Host/Rack/Pod records instead
  /// of the precomputed tables.  Kept (and unit-tested against the fast
  /// paths across every scope pair) as the ground truth the tables must
  /// reproduce exactly; not for hot-path use.
  [[nodiscard]] Scope scope_between_walk(HostId a, HostId b) const;
  void path_links_walk(HostId a, HostId b, std::vector<LinkId>& out) const;

  /// Link layout: [0,H) host uplinks, [H,H+R) ToR uplinks, [H+R,H+R+P) pod
  /// uplinks, [H+R+P,H+R+P+S) site uplinks.
  [[nodiscard]] std::size_t link_count() const noexcept;
  [[nodiscard]] LinkId host_link(HostId h) const noexcept;
  [[nodiscard]] LinkId rack_link(std::uint32_t rack) const noexcept;
  [[nodiscard]] LinkId pod_link(std::uint32_t pod) const noexcept;
  [[nodiscard]] LinkId site_link(std::uint32_t site) const noexcept;
  [[nodiscard]] double link_capacity(LinkId link) const;
  [[nodiscard]] std::string link_name(LinkId link) const;

  /// Component-wise maximum host capacity; the capacity given to the
  /// "imaginary hosts" of the heuristic lower bound (Section III-A-2).
  [[nodiscard]] const topo::Resources& max_host_capacity() const noexcept {
    return max_host_capacity_;
  }
  [[nodiscard]] double max_host_uplink_mbps() const noexcept {
    return max_host_uplink_;
  }

  /// Largest scope any pair of hosts can have; basis of the û_bw worst-case
  /// normalizer.
  [[nodiscard]] Scope max_scope() const noexcept { return max_scope_; }

  /// One-way latency (microseconds) between two endpoints separated at
  /// `scope`.  Supports the latency requirements of the paper's future work
  /// (Section VI): a pipe with max_latency_us only fits placements whose
  /// scope latency stays within the budget.  Values are configurable via
  /// DataCenterBuilder::set_scope_latencies; defaults approximate one
  /// switch hop per level: same host 5us, rack 25us, pod 80us, site 200us,
  /// cross-site 2000us.
  [[nodiscard]] double scope_latency_us(Scope scope) const noexcept {
    return scope_latency_us_[static_cast<std::size_t>(scope)];
  }

  /// Widest scope whose latency fits the budget, or nullopt when even
  /// same-host latency exceeds it.
  [[nodiscard]] std::optional<Scope> max_scope_for_latency(
      double budget_us) const noexcept;

 private:
  friend class DataCenterBuilder;

  std::vector<Host> hosts_;
  std::vector<Rack> racks_;
  std::vector<Pod> pods_;
  std::vector<Site> sites_;
  // Hot-path acceleration tables, derived by DataCenterBuilder::build():
  // per-host ancestor triples and the flat 4-links-per-host uplink chains
  // that scope_between / path_between read instead of walking the tree.
  std::vector<HostAncestors> ancestors_;
  std::vector<LinkId> uplink_chains_;
  topo::Resources max_host_capacity_;
  double max_host_uplink_ = 0.0;
  Scope max_scope_ = Scope::kSameHost;
  std::array<double, 5> scope_latency_us_{5.0, 25.0, 80.0, 200.0, 2000.0};
};

/// Builds the hierarchy top-down; every add_* returns the unit's index.
///
///   DataCenterBuilder b;
///   auto site = b.add_site("dc1", 400'000);
///   auto pod  = b.add_pod(site, "pod1", 100'000);
///   auto rack = b.add_rack(pod, "rack1", 10'000);
///   b.add_host(rack, "host1", {16, 32, 1000}, 3200);
///   DataCenter dc = b.build();
class DataCenterBuilder {
 public:
  std::uint32_t add_site(const std::string& name, double uplink_mbps);
  std::uint32_t add_pod(std::uint32_t site, const std::string& name,
                        double uplink_mbps);
  std::uint32_t add_rack(std::uint32_t pod, const std::string& name,
                         double uplink_mbps);
  HostId add_host(std::uint32_t rack, const std::string& name,
                  const topo::Resources& capacity, double uplink_mbps,
                  std::vector<std::string> tags = {});

  /// Overrides the per-scope one-way latencies (microseconds), ordered
  /// same-host, same-rack, same-pod, same-site, cross-site; must be
  /// non-negative and non-decreasing.
  DataCenterBuilder& set_scope_latencies(const std::array<double, 5>& us);

  /// Validates (at least one host, positive capacities) and finishes.
  [[nodiscard]] DataCenter build();

 private:
  DataCenter dc_;
};

}  // namespace ostro::dc
