#include "datacenter/prune_labels.h"

#include <algorithm>

#include "util/metrics.h"

namespace ostro::dc {

namespace {

// Compute-feasibility: strictly positive free vcpus AND mem_gb, disk
// ignored.  Deliberately weaker than the FeasibilityIndex all-dimensions
// predicate: the labels use these counts only to conclude impossibility, so
// they must over-approximate the hosts that could receive a node — and a
// disk-exhausted host can still receive a zero-disk VM.  Any node that
// requires compute (the `positive` guard at the call sites) cannot land on
// a host this predicate excludes.
[[nodiscard]] bool is_feasible(const topo::Resources& free) noexcept {
  return free.vcpus > 0.0 && free.mem_gb > 0.0;
}

constexpr double kBandwidthEps = 1e-9;

}  // namespace

void PruneLabels::rebuild(const DataCenter& dc, const FeasibilityIndex& index) {
  static util::metrics::Counter& m_rebuilds =
      util::metrics::counter("labels.rebuilds");
  dc_ = &dc;

  // ---- dynamic separation-feasibility counters ----
  const std::size_t hosts = dc.host_count();
  host_feasible_.assign(hosts, 0);
  rack_feasible_hosts_.assign(dc.racks().size(), 0);
  pod_feasible_hosts_.assign(dc.pods().size(), 0);
  site_feasible_hosts_.assign(dc.sites().size(), 0);
  pod_feasible_racks_.assign(dc.pods().size(), 0);
  site_feasible_pods_.assign(dc.sites().size(), 0);
  for (HostId h = 0; h < hosts; ++h) {
    if (is_feasible(index.host_free(h))) {
      const HostAncestors& anc = dc.ancestors(h);
      host_feasible_[h] = 1;
      ++rack_feasible_hosts_[anc.rack];
      ++pod_feasible_hosts_[anc.pod];
      ++site_feasible_hosts_[anc.site];
    }
  }
  racks_multi_feasible_ = 0;
  for (const Rack& rack : dc.racks()) {
    if (rack_feasible_hosts_[rack.id] >= 1) ++pod_feasible_racks_[rack.pod];
    if (rack_feasible_hosts_[rack.id] >= 2) ++racks_multi_feasible_;
  }
  pods_multi_feasible_racks_ = 0;
  for (const Pod& pod : dc.pods()) {
    if (pod_feasible_racks_[pod.id] >= 1) ++site_feasible_pods_[pod.datacenter];
    if (pod_feasible_racks_[pod.id] >= 2) ++pods_multi_feasible_racks_;
  }
  sites_multi_feasible_pods_ = 0;
  for (const Site& site : dc.sites()) {
    if (site_feasible_pods_[site.id] >= 2) ++sites_multi_feasible_pods_;
  }

  // ---- static floors ----
  static_multi_host_racks_ = 0;
  for (const Rack& rack : dc.racks()) {
    if (rack.hosts.size() >= 2) ++static_multi_host_racks_;
  }
  static_multi_rack_pods_ = 0;
  std::uint32_t nonempty_pods_per_site = 0;
  static_multi_pod_sites_ = 0;
  for (const Site& site : dc.sites()) {
    nonempty_pods_per_site = 0;
    for (const std::uint32_t p : site.pods) {
      std::uint32_t nonempty_racks = 0;
      for (const std::uint32_t r : dc.pods()[p].racks) {
        if (!dc.racks()[r].hosts.empty()) ++nonempty_racks;
      }
      if (nonempty_racks >= 2) ++static_multi_rack_pods_;
      if (nonempty_racks >= 1) ++nonempty_pods_per_site;
    }
    if (nonempty_pods_per_site >= 2) ++static_multi_pod_sites_;
  }

  // ---- tag registry (immutable after build) ----
  tag_names_.clear();
  for (const Host& host : dc.hosts()) {
    for (const std::string& tag : host.tags) tag_names_.push_back(tag);
  }
  std::sort(tag_names_.begin(), tag_names_.end());
  tag_names_.erase(std::unique(tag_names_.begin(), tag_names_.end()),
                   tag_names_.end());
  tag_overflow_ = tag_names_.size() > 64;
  host_tag_mask_.assign(hosts, 0);
  rack_tag_mask_.assign(dc.racks().size(), 0);
  pod_tag_mask_.assign(dc.pods().size(), 0);
  site_tag_mask_.assign(dc.sites().size(), 0);
  if (!tag_overflow_) {
    for (const Host& host : dc.hosts()) {
      std::uint64_t mask = 0;
      for (const std::string& tag : host.tags) {
        const auto it =
            std::lower_bound(tag_names_.begin(), tag_names_.end(), tag);
        mask |= 1ULL << static_cast<std::uint64_t>(it - tag_names_.begin());
      }
      const HostAncestors& anc = dc.ancestors(host.id);
      host_tag_mask_[host.id] = mask;
      rack_tag_mask_[anc.rack] |= mask;
      pod_tag_mask_[anc.pod] |= mask;
      site_tag_mask_[anc.site] |= mask;
    }
  }
  m_rebuilds.inc();
}

void PruneLabels::on_host_update(HostId h, const topo::Resources& free) {
  static util::metrics::Counter& m_refreshes =
      util::metrics::counter("labels.refreshes");
  m_refreshes.inc();
  const std::uint8_t now = is_feasible(free) ? 1 : 0;
  if (host_feasible_[h] == now) return;
  host_feasible_[h] = now;
  const HostAncestors& anc = dc_->ancestors(h);

  // Host-count aggregates move unconditionally on a flip; the pair/cascade
  // counters below only change on a boundary crossing (>= 2 for the pair
  // counters, >= 1 to cascade feasibility one level up).
  pod_feasible_hosts_[anc.pod] += now ? 1U : -1U;
  site_feasible_hosts_[anc.site] += now ? 1U : -1U;

  std::uint32_t& rf = rack_feasible_hosts_[anc.rack];
  const std::uint32_t rf_old = rf;
  rf = now ? rf + 1 : rf - 1;
  if (rf_old < 2 && rf >= 2) ++racks_multi_feasible_;
  if (rf_old >= 2 && rf < 2) --racks_multi_feasible_;
  if ((rf_old >= 1) == (rf >= 1)) return;

  std::uint32_t& pr = pod_feasible_racks_[anc.pod];
  const std::uint32_t pr_old = pr;
  pr = (rf >= 1) ? pr + 1 : pr - 1;
  if (pr_old < 2 && pr >= 2) ++pods_multi_feasible_racks_;
  if (pr_old >= 2 && pr < 2) --pods_multi_feasible_racks_;
  if ((pr_old >= 1) == (pr >= 1)) return;

  std::uint32_t& sp = site_feasible_pods_[anc.site];
  const std::uint32_t sp_old = sp;
  sp = (pr >= 1) ? sp + 1 : sp - 1;
  if (sp_old < 2 && sp >= 2) ++sites_multi_feasible_pods_;
  if (sp_old >= 2 && sp < 2) --sites_multi_feasible_pods_;
}

Scope PruneLabels::tighten_separation(Scope scope, bool both_positive) const {
  if (dc_ == nullptr) return scope;
  static util::metrics::Counter& m_escalations =
      util::metrics::counter("heuristic.separation_escalations");
  const Scope entry = scope;
  // Chained ladder: each escalation re-tests at the next level, so a data
  // center with no multi-host rack AND no multi-rack pod sends a same-rack
  // pipe straight to same-site pricing.
  if (scope == Scope::kSameRack &&
      (static_multi_host_racks_ == 0 ||
       (both_positive && racks_multi_feasible_ == 0))) {
    scope = Scope::kSamePod;
  }
  if (scope == Scope::kSamePod &&
      (static_multi_rack_pods_ == 0 ||
       (both_positive && pods_multi_feasible_racks_ == 0))) {
    scope = Scope::kSameSite;
  }
  if (scope == Scope::kSameSite &&
      (static_multi_pod_sites_ == 0 ||
       (both_positive && sites_multi_feasible_pods_ == 0))) {
    scope = Scope::kCrossSite;
  }
  if (scope != entry) m_escalations.inc();
  return scope;
}

Scope PruneLabels::tighten_to_host(Scope scope, HostId host,
                                   const topo::Resources& req, bool positive,
                                   double bw_mbps,
                                   const FeasibilityIndex& index) const {
  if (dc_ == nullptr || scope == Scope::kSameHost || scope >= Scope::kCrossSite)
    return scope;
  static util::metrics::Counter& m_escalations =
      util::metrics::counter("heuristic.host_escalations");
  const Scope entry = scope;
  const HostAncestors& anc = dc_->ancestors(host);

  // At each level: the free endpoint needs a host in the subtree that (a)
  // exists and is distinct from `host`, (b) can fit it (max_free is an
  // upper bound on any member host), and whose uplink can carry the pipe.
  // When `positive`, a compute-feasible host distinct from `host` must
  // exist too — the labels' own counts, not the index's all-dimensions
  // feasible_hosts, so the over-approximation stays predicate-consistent
  // for zero-disk nodes (subtracting the inner unit's count isolates
  // "outside the smaller scope" hosts; at rack level `host` itself is the
  // only insider).
  if (scope == Scope::kSameRack) {
    const FeasibilityIndex::Aggregate& rack = index.rack(anc.rack);
    const std::uint32_t inner =
        host_feasible_[host] != 0 ? 1U : 0U;
    if (rack.host_count <= 1 || !req.fits_within(rack.max_free) ||
        (positive && rack_feasible_hosts_[anc.rack] <= inner) ||
        bw_mbps > rack.max_free_uplink_mbps + kBandwidthEps) {
      scope = Scope::kSamePod;
    }
  }
  if (scope == Scope::kSamePod) {
    const FeasibilityIndex::Aggregate& pod = index.pod(anc.pod);
    const FeasibilityIndex::Aggregate& rack = index.rack(anc.rack);
    if (pod.host_count <= rack.host_count || !req.fits_within(pod.max_free) ||
        (positive &&
         pod_feasible_hosts_[anc.pod] <= rack_feasible_hosts_[anc.rack]) ||
        bw_mbps > pod.max_free_uplink_mbps + kBandwidthEps) {
      scope = Scope::kSameSite;
    }
  }
  if (scope == Scope::kSameSite) {
    const FeasibilityIndex::Aggregate& site = index.site(anc.site);
    const FeasibilityIndex::Aggregate& pod = index.pod(anc.pod);
    if (site.host_count <= pod.host_count || !req.fits_within(site.max_free) ||
        (positive &&
         site_feasible_hosts_[anc.site] <= pod_feasible_hosts_[anc.pod]) ||
        bw_mbps > site.max_free_uplink_mbps + kBandwidthEps) {
      scope = Scope::kCrossSite;
    }
  }
  if (scope != entry) m_escalations.inc();
  return scope;
}

std::uint64_t PruneLabels::required_tag_mask(
    const std::vector<std::string>& required) const noexcept {
  std::uint64_t mask = 0;
  for (const std::string& tag : required) {
    const auto it = std::lower_bound(tag_names_.begin(), tag_names_.end(), tag);
    if (it == tag_names_.end() || *it != tag) return ~0ULL;  // no host has it
    mask |= 1ULL << static_cast<std::uint64_t>(it - tag_names_.begin());
  }
  return mask;
}

bool PruneLabels::selfcheck(const FeasibilityIndex& index) const {
  if (dc_ == nullptr) return true;
  PruneLabels fresh;
  fresh.rebuild(*dc_, index);
  return *this == fresh;
}

}  // namespace ostro::dc
