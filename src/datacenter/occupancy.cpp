#include "datacenter/occupancy.h"

#include <stdexcept>

#include "util/metrics.h"

namespace ostro::dc {

Occupancy::Occupancy(const DataCenter& dc)
    : dc_(&dc),
      host_used_(dc.host_count()),
      link_used_(dc.link_count(), 0.0),
      active_(dc.host_count(), false) {
  // All-idle: every host's free capacity is its full capacity, every host
  // uplink is unreserved.  The expressions mirror available() /
  // link_available_mbps() so incremental updates land on identical values.
  std::vector<topo::Resources> host_free(dc.host_count());
  std::vector<double> uplink_free(dc.host_count());
  for (HostId h = 0; h < dc.host_count(); ++h) {
    host_free[h] = dc.host(h).capacity - host_used_[h];
    uplink_free[h] = dc.link_capacity(dc.host_link(h)) - link_used_[dc.host_link(h)];
  }
  index_.rebuild(dc, std::move(host_free), std::move(uplink_free));
  labels_.rebuild(dc, index_);
}

void Occupancy::index_host(HostId h) {
  const topo::Resources free = dc_->host(h).capacity - host_used_[h];
  index_.set_host_free(h, free);
  labels_.on_host_update(h, free);
}

void Occupancy::index_link(LinkId link) {
  if (link < dc_->host_count()) {
    index_.set_host_uplink_free(static_cast<HostId>(link),
                                dc_->link_capacity(link) - link_used_[link]);
  }
}

void Occupancy::check_host(HostId h) const {
  if (h >= host_used_.size()) {
    throw std::out_of_range("Occupancy: bad host id");
  }
}

void Occupancy::check_link(LinkId link) const {
  if (link >= link_used_.size()) {
    throw std::out_of_range("Occupancy: bad link id");
  }
}

topo::Resources Occupancy::used(HostId h) const {
  check_host(h);
  return host_used_[h];
}

topo::Resources Occupancy::available(HostId h) const {
  check_host(h);
  return dc_->host(h).capacity - host_used_[h];
}

double Occupancy::link_used_mbps(LinkId link) const {
  check_link(link);
  return link_used_[link];
}

double Occupancy::link_available_mbps(LinkId link) const {
  check_link(link);
  return dc_->link_capacity(link) - link_used_[link];
}

bool Occupancy::is_active(HostId h) const {
  check_host(h);
  return active_[h];
}

void Occupancy::add_host_load(HostId h, const topo::Resources& load) {
  check_host(h);
  topo::require_nonnegative(load, "add_host_load");
  const topo::Resources next = host_used_[h] + load;
  if (!next.fits_within(dc_->host(h).capacity)) {
    throw std::invalid_argument("Occupancy::add_host_load: host " +
                                dc_->host(h).name + " over capacity");
  }
  host_used_[h] = next;
  ++version_;
  index_host(h);
  if (!active_[h]) {
    active_[h] = true;
    ++active_count_;
  }
}

void Occupancy::remove_host_load(HostId h, const topo::Resources& load) {
  check_host(h);
  topo::require_nonnegative(load, "remove_host_load");
  const topo::Resources next = host_used_[h] - load;
  constexpr double kEps = -1e-6;
  if (next.vcpus < kEps || next.mem_gb < kEps || next.disk_gb < kEps) {
    throw std::invalid_argument(
        "Occupancy::remove_host_load: releasing more than used on " +
        dc_->host(h).name);
  }
  host_used_[h] = {std::max(0.0, next.vcpus), std::max(0.0, next.mem_gb),
                   std::max(0.0, next.disk_gb)};
  ++version_;
  index_host(h);
  // Active status is sticky: releasing load does not mark a host idle; the
  // caller decides (a host that hosted a tenant may still hold others not
  // tracked here).
}

void Occupancy::reserve_link(LinkId link, double mbps) {
  static util::metrics::Counter& m_reservations =
      util::metrics::counter("occupancy.link_reservations");
  static util::metrics::Summary& m_mbps =
      util::metrics::summary("occupancy.link_reserved_mbps");
  check_link(link);
  if (mbps < 0.0) {
    throw std::invalid_argument("Occupancy::reserve_link: negative amount");
  }
  constexpr double kEps = 1e-9;
  if (link_used_[link] + mbps > dc_->link_capacity(link) + kEps) {
    throw std::invalid_argument("Occupancy::reserve_link: link " +
                                dc_->link_name(link) + " over capacity");
  }
  link_used_[link] += mbps;
  ++version_;
  index_link(link);
  m_reservations.inc();
  m_mbps.observe(mbps);
}

void Occupancy::release_link(LinkId link, double mbps) {
  static util::metrics::Counter& m_releases =
      util::metrics::counter("occupancy.link_releases");
  check_link(link);
  if (mbps < 0.0) {
    throw std::invalid_argument("Occupancy::release_link: negative amount");
  }
  if (link_used_[link] - mbps < -1e-6) {
    throw std::invalid_argument(
        "Occupancy::release_link: releasing more than reserved on " +
        dc_->link_name(link));
  }
  link_used_[link] = std::max(0.0, link_used_[link] - mbps);
  ++version_;
  index_link(link);
  m_releases.inc();
}

void Occupancy::mark_active(HostId h) {
  check_host(h);
  if (!active_[h]) {
    active_[h] = true;
    ++active_count_;
    ++version_;
  }
}

void Occupancy::set_active(HostId h, bool active) {
  check_host(h);
  if (active_[h] == active) return;
  active_[h] = active;
  ++version_;
  if (active) {
    ++active_count_;
  } else {
    --active_count_;
  }
}

bool Occupancy::deactivate_if_idle(HostId h) {
  static util::metrics::Counter& m_deactivations =
      util::metrics::counter("occupancy.host_deactivations");
  check_host(h);
  if (!active_[h] || !host_used_[h].is_zero()) return false;
  active_[h] = false;
  --active_count_;
  ++version_;
  m_deactivations.inc();
  return true;
}

double Occupancy::total_reserved_mbps() const noexcept {
  double total = 0.0;
  for (double used : link_used_) total += used;
  return total;
}

}  // namespace ostro::dc
