// Copy-on-write occupancy overlay for tentative reservations and releases.
//
// OccupancyDelta stages the mutations of a placement (host loads, link
// bandwidth) on top of a const Occupancy base without touching it: every
// staged op is validated against base-plus-delta exactly the way Occupancy
// validates a direct mutation, and the op sequence is recorded in order.
// Occupancy::apply_delta then flushes the whole delta in one batch, replaying
// the recorded ops with the same arithmetic a direct op-by-op application
// would have performed, so the resulting Occupancy is bit-identical to the
// reserve/rollback style it replaces (see the differential tests).
//
// The payoff is on the failure path and in per-op overhead: a reservation
// that turns out infeasible used to mutate the base link by link and then
// release link by link (occupancy.link_reservations churn); with the delta
// it never touches the base at all.  PlacementTransaction uses this as its
// default staging mode.
//
// Since the lifecycle subsystem (departures, host repair, defragmentation
// migrations) the delta also stages the *release* direction —
// remove_host_load / release_link mirror Occupancy's release mutators with
// the same validation and clamping arithmetic — so a whole departure or a
// migration (release old host + old paths, add new host + new paths) flushes
// as one atomic batch.  CAUTION: a delta holding release ops is no longer a
// consume-only overlay, so the base FeasibilityIndex aggregates stop being
// sound upper bounds for the overlay view (a release can make a subtree
// feasible that the base index rejects).  Search overlays never stage
// releases; callers that do (the release/migration paths) must not feed the
// delta to index-pruned candidate generation — has_releases() tells.
//
// The delta snapshots base values on first touch; the base must not be
// mutated between staging and apply_delta (apply_delta verifies the
// snapshots and rejects a stale delta).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "datacenter/occupancy.h"

namespace ostro::dc {

class OccupancyDelta {
 public:
  /// Overlay over `base`; the reference must outlive the delta.
  explicit OccupancyDelta(const Occupancy& base) : base_(&base) {}

  [[nodiscard]] const Occupancy& base() const noexcept { return *base_; }
  [[nodiscard]] const DataCenter& datacenter() const noexcept {
    return base_->datacenter();
  }

  // ---- overlay queries (base plus staged deltas) ----
  [[nodiscard]] topo::Resources available(HostId h) const;
  [[nodiscard]] double link_available_mbps(LinkId link) const;
  /// Active in the base or activated by a staged load.
  [[nodiscard]] bool is_active(HostId h) const;

  /// Feasibility aggregates of the base occupancy.  Staged ops only consume
  /// capacity on top of the base, so these remain sound upper bounds for
  /// subtree pruning against the overlay view: a subtree the base index
  /// rejects holds no feasible host in the overlay either.
  [[nodiscard]] const FeasibilityIndex& base_feasibility() const noexcept {
    return base_->feasibility();
  }

  // ---- staged mutations ----
  /// Stages `load` on host `h`; throws std::invalid_argument when the host
  /// would exceed capacity (same check as Occupancy::add_host_load, against
  /// the staged running value).  The base is never touched.
  void add_host_load(HostId h, const topo::Resources& load);
  /// Stages a bandwidth reservation; throws std::invalid_argument when the
  /// link would exceed capacity (same check and epsilon as
  /// Occupancy::reserve_link).
  void reserve_link(LinkId link, double mbps);

  /// Stages a load release on host `h`; throws std::invalid_argument when
  /// more than the staged running value would be released (same check,
  /// epsilon and clamping as Occupancy::remove_host_load).  Marks the delta
  /// as holding releases (see the header comment on index soundness).
  void remove_host_load(HostId h, const topo::Resources& load);
  /// Stages a bandwidth release; same check and clamping as
  /// Occupancy::release_link.
  void release_link(LinkId link, double mbps);

  /// True when any release op was staged: the base feasibility aggregates
  /// are then no longer sound upper bounds for this overlay view.
  [[nodiscard]] bool has_releases() const noexcept { return has_releases_; }

  /// Discards everything staged; the delta is reusable.
  void clear() noexcept;
  [[nodiscard]] bool empty() const noexcept {
    return host_ops_.empty() && link_ops_.empty();
  }
  [[nodiscard]] std::size_t host_op_count() const noexcept {
    return host_ops_.size();
  }
  [[nodiscard]] std::size_t link_op_count() const noexcept {
    return link_ops_.size();
  }

 private:
  friend class Occupancy;  // apply_delta replays the op log

  /// Running effective value of one touched host/link: the value the base
  /// field would hold after the staged ops.  `initial` is the base value at
  /// first touch; apply_delta checks it to reject stale deltas.
  struct HostState {
    topo::Resources initial;
    topo::Resources effective;
  };
  struct LinkState {
    double initial = 0.0;
    double effective = 0.0;
  };
  struct HostOp {
    HostId host;
    topo::Resources load;
    bool release = false;  ///< remove_host_load instead of add_host_load
  };
  struct LinkOp {
    LinkId link;
    double mbps;
    bool release = false;  ///< release_link instead of reserve_link
  };

  const Occupancy* base_;
  std::unordered_map<HostId, HostState> host_state_;
  std::unordered_map<LinkId, LinkState> link_state_;
  std::vector<HostOp> host_ops_;
  std::vector<LinkOp> link_ops_;
  bool has_releases_ = false;
};

}  // namespace ostro::dc
