#include "datacenter/datacenter.h"

#include <algorithm>
#include <stdexcept>

namespace ostro::dc {

bool Host::has_all_tags(
    const std::vector<std::string>& required) const noexcept {
  // Both vectors are sorted: subset check by merge walk.
  return std::includes(tags.begin(), tags.end(), required.begin(),
                       required.end());
}

std::optional<Scope> DataCenter::max_scope_for_latency(
    double budget_us) const noexcept {
  std::optional<Scope> widest;
  for (int s = 0; s <= static_cast<int>(Scope::kCrossSite); ++s) {
    if (scope_latency_us_[static_cast<std::size_t>(s)] <= budget_us) {
      widest = static_cast<Scope>(s);
    }
  }
  return widest;
}

std::optional<HostId> DataCenter::find_host(
    const std::string& name) const noexcept {
  for (const auto& h : hosts_) {
    if (h.name == name) return h.id;
  }
  return std::nullopt;
}

const Host& DataCenter::host(HostId id) const {
  if (id >= hosts_.size()) {
    throw std::out_of_range("DataCenter::host: bad id");
  }
  return hosts_[id];
}

Scope DataCenter::scope_between(HostId a, HostId b) const {
  if (a >= ancestors_.size() || b >= ancestors_.size()) {
    throw std::out_of_range("DataCenter::scope_between: bad host id");
  }
  if (a == b) return Scope::kSameHost;
  const HostAncestors& ta = ancestors_[a];
  const HostAncestors& tb = ancestors_[b];
  if (ta.rack == tb.rack) return Scope::kSameRack;
  if (ta.pod == tb.pod) return Scope::kSamePod;
  if (ta.site == tb.site) return Scope::kSameSite;
  return Scope::kCrossSite;
}

Scope DataCenter::scope_between_walk(HostId a, HostId b) const {
  const Host& ha = host(a);
  const Host& hb = host(b);
  if (a == b) return Scope::kSameHost;
  if (ha.rack == hb.rack) return Scope::kSameRack;
  if (ha.pod == hb.pod) return Scope::kSamePod;
  if (ha.datacenter == hb.datacenter) return Scope::kSameSite;
  return Scope::kCrossSite;
}

bool DataCenter::separated_at(HostId a, HostId b,
                              topo::DiversityLevel level) const {
  if (a >= ancestors_.size() || b >= ancestors_.size()) {
    throw std::out_of_range("DataCenter::separated_at: bad host id");
  }
  const HostAncestors& ta = ancestors_[a];
  const HostAncestors& tb = ancestors_[b];
  switch (level) {
    case topo::DiversityLevel::kHost: return a != b;
    case topo::DiversityLevel::kRack: return ta.rack != tb.rack;
    case topo::DiversityLevel::kPod: return ta.pod != tb.pod;
    case topo::DiversityLevel::kDatacenter: return ta.site != tb.site;
  }
  return false;
}

void DataCenter::path_links(HostId a, HostId b,
                            std::vector<LinkId>& out) const {
  const PathLinks path = path_between(a, b);
  out.insert(out.end(), path.begin(), path.end());
}

PathLinks DataCenter::path_between(HostId a, HostId b) const {
  // scope_between validates both ids; int(scope) is the number of levels
  // whose uplink pair the pipe traverses (0 on the same host, up to 4
  // across sites).
  const Scope scope = scope_between(a, b);
  const auto levels = static_cast<std::uint32_t>(scope);
  const LinkId* chain_a = &uplink_chains_[std::size_t{a} * 4];
  const LinkId* chain_b = &uplink_chains_[std::size_t{b} * 4];
  PathLinks out;
  for (std::uint32_t i = 0; i < levels; ++i) {
    out.links[out.count++] = chain_a[i];
    out.links[out.count++] = chain_b[i];
  }
  return out;
}

void DataCenter::path_links_walk(HostId a, HostId b,
                                 std::vector<LinkId>& out) const {
  if (a == b) return;
  const Host& ha = host(a);
  const Host& hb = host(b);
  out.push_back(host_link(a));
  out.push_back(host_link(b));
  if (ha.rack == hb.rack) return;
  out.push_back(rack_link(ha.rack));
  out.push_back(rack_link(hb.rack));
  if (ha.pod == hb.pod) return;
  out.push_back(pod_link(ha.pod));
  out.push_back(pod_link(hb.pod));
  if (ha.datacenter == hb.datacenter) return;
  out.push_back(site_link(ha.datacenter));
  out.push_back(site_link(hb.datacenter));
}

std::size_t DataCenter::link_count() const noexcept {
  return hosts_.size() + racks_.size() + pods_.size() + sites_.size();
}

LinkId DataCenter::host_link(HostId h) const noexcept {
  return static_cast<LinkId>(h);
}

LinkId DataCenter::rack_link(std::uint32_t rack) const noexcept {
  return static_cast<LinkId>(hosts_.size() + rack);
}

LinkId DataCenter::pod_link(std::uint32_t pod) const noexcept {
  return static_cast<LinkId>(hosts_.size() + racks_.size() + pod);
}

LinkId DataCenter::site_link(std::uint32_t site) const noexcept {
  return static_cast<LinkId>(hosts_.size() + racks_.size() + pods_.size() +
                             site);
}

double DataCenter::link_capacity(LinkId link) const {
  std::size_t index = link;
  if (index < hosts_.size()) return hosts_[index].uplink_mbps;
  index -= hosts_.size();
  if (index < racks_.size()) return racks_[index].uplink_mbps;
  index -= racks_.size();
  if (index < pods_.size()) return pods_[index].uplink_mbps;
  index -= pods_.size();
  if (index < sites_.size()) return sites_[index].uplink_mbps;
  throw std::out_of_range("DataCenter::link_capacity: bad link");
}

std::string DataCenter::link_name(LinkId link) const {
  std::size_t index = link;
  if (index < hosts_.size()) return "host:" + hosts_[index].name;
  index -= hosts_.size();
  if (index < racks_.size()) return "tor:" + racks_[index].name;
  index -= racks_.size();
  if (index < pods_.size()) return "pod:" + pods_[index].name;
  index -= pods_.size();
  if (index < sites_.size()) return "site:" + sites_[index].name;
  throw std::out_of_range("DataCenter::link_name: bad link");
}

std::uint32_t DataCenterBuilder::add_site(const std::string& name,
                                          double uplink_mbps) {
  if (uplink_mbps < 0.0) {
    throw std::invalid_argument("add_site: negative uplink");
  }
  const auto id = static_cast<std::uint32_t>(dc_.sites_.size());
  dc_.sites_.push_back(Site{id, name, uplink_mbps, {}});
  return id;
}

std::uint32_t DataCenterBuilder::add_pod(std::uint32_t site,
                                         const std::string& name,
                                         double uplink_mbps) {
  if (site >= dc_.sites_.size()) {
    throw std::invalid_argument("add_pod: unknown site");
  }
  if (uplink_mbps < 0.0) {
    throw std::invalid_argument("add_pod: negative uplink");
  }
  const auto id = static_cast<std::uint32_t>(dc_.pods_.size());
  dc_.pods_.push_back(Pod{id, name, site, uplink_mbps, {}});
  dc_.sites_[site].pods.push_back(id);
  return id;
}

std::uint32_t DataCenterBuilder::add_rack(std::uint32_t pod,
                                          const std::string& name,
                                          double uplink_mbps) {
  if (pod >= dc_.pods_.size()) {
    throw std::invalid_argument("add_rack: unknown pod");
  }
  if (uplink_mbps < 0.0) {
    throw std::invalid_argument("add_rack: negative uplink");
  }
  const auto id = static_cast<std::uint32_t>(dc_.racks_.size());
  const auto site = dc_.pods_[pod].datacenter;
  dc_.racks_.push_back(Rack{id, name, pod, site, uplink_mbps, {}});
  dc_.pods_[pod].racks.push_back(id);
  return id;
}

HostId DataCenterBuilder::add_host(std::uint32_t rack, const std::string& name,
                                   const topo::Resources& capacity,
                                   double uplink_mbps,
                                   std::vector<std::string> tags) {
  if (rack >= dc_.racks_.size()) {
    throw std::invalid_argument("add_host: unknown rack");
  }
  topo::require_nonnegative(capacity, "host " + name);
  if (uplink_mbps < 0.0) {
    throw std::invalid_argument("add_host: negative uplink");
  }
  for (const auto& tag : tags) {
    if (tag.empty()) throw std::invalid_argument("add_host: empty tag");
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  const auto id = static_cast<HostId>(dc_.hosts_.size());
  const Rack& r = dc_.racks_[rack];
  dc_.hosts_.push_back(Host{id, name, rack, r.pod, r.datacenter, capacity,
                            uplink_mbps, std::move(tags)});
  dc_.racks_[rack].hosts.push_back(id);
  return id;
}

DataCenterBuilder& DataCenterBuilder::set_scope_latencies(
    const std::array<double, 5>& us) {
  double previous = 0.0;
  for (const double value : us) {
    if (value < 0.0 || value < previous) {
      throw std::invalid_argument(
          "set_scope_latencies: latencies must be non-negative and "
          "non-decreasing");
    }
    previous = value;
  }
  dc_.scope_latency_us_ = us;
  return *this;
}

DataCenter DataCenterBuilder::build() {
  if (dc_.hosts_.empty()) {
    throw std::invalid_argument("DataCenterBuilder::build: no hosts");
  }
  topo::Resources max_cap;
  double max_uplink = 0.0;
  for (const Host& h : dc_.hosts_) {
    max_cap.vcpus = std::max(max_cap.vcpus, h.capacity.vcpus);
    max_cap.mem_gb = std::max(max_cap.mem_gb, h.capacity.mem_gb);
    max_cap.disk_gb = std::max(max_cap.disk_gb, h.capacity.disk_gb);
    max_uplink = std::max(max_uplink, h.uplink_mbps);
  }
  dc_.max_host_capacity_ = max_cap;
  dc_.max_host_uplink_ = max_uplink;

  Scope widest = Scope::kSameHost;
  if (dc_.sites_.size() > 1) {
    widest = Scope::kCrossSite;
  } else if (dc_.pods_.size() > 1) {
    widest = Scope::kSameSite;
  } else if (dc_.racks_.size() > 1) {
    widest = Scope::kSamePod;
  } else if (dc_.hosts_.size() > 1) {
    widest = Scope::kSameRack;
  }
  dc_.max_scope_ = widest;

  // Derive the hot-path tables: per-host ancestor triples and the flat
  // uplink chains (host->ToR, ToR->pod, pod->root, root->interconnect) that
  // scope_between / path_between read instead of walking the hierarchy.
  dc_.ancestors_.resize(dc_.hosts_.size());
  dc_.uplink_chains_.resize(dc_.hosts_.size() * 4);
  for (const Host& h : dc_.hosts_) {
    dc_.ancestors_[h.id] = HostAncestors{h.rack, h.pod, h.datacenter};
    LinkId* chain = &dc_.uplink_chains_[std::size_t{h.id} * 4];
    chain[0] = dc_.host_link(h.id);
    chain[1] = dc_.rack_link(h.rack);
    chain[2] = dc_.pod_link(h.pod);
    chain[3] = dc_.site_link(h.datacenter);
  }

  DataCenter out = std::move(dc_);
  dc_ = DataCenter{};
  return out;
}

}  // namespace ostro::dc
