// Shard partitioning of one DataCenter into independent placement domains.
//
// ShardLayout cuts the global hierarchy into `shard_count` disjoint host
// sets and rebuilds each as a self-contained DataCenter, so every shard can
// own its own Occupancy / FeasibilityIndex / PruneLabels behind its own
// writer lock (core::ShardRouter composes one core::PlacementService per
// shard).  The partitioning invariant that keeps per-shard planning sound:
//
//   * every shard is either a union of WHOLE sites, or a subset of the pods
//     of a SINGLE site — a pod (and hence a rack and a host) never splits.
//
// Consequences of the invariant:
//   * A placement entirely inside one shard never traverses the uplink of a
//     split site (its local paths top out at same-site scope), so the shard
//     can validate every link it touches against its own local capacity
//     with no global knowledge.
//   * Every link of a cross-shard path is owned by exactly one participant
//     shard, except the uplinks of split sites, which are shared between
//     that site's shards — those are tracked by the cross-shard link ledger
//     (link_owner() == kLedgerOwned, listed in shared_links()).
//
// Partitioning policy (deterministic):
//   * shard_count <= sites: whole sites are binned greedily by host count
//     (sites in id order, each to the currently smallest bin).
//   * shard_count > sites: every site gets at least one shard; the extra
//     shards go to the sites with the most hosts per shard (capped by pod
//     count), and a split site distributes its pods greedily by host count
//     over its shard group.
//
// Id mapping: within a shard, sites/pods/racks/hosts are rebuilt in GLOBAL
// id order, so local ids are the order-preserving compaction of the global
// ids.  With shard_count == 1 the mapping is the identity and the rebuilt
// DataCenter is structurally identical to the global one — the basis of the
// single-shard bit-identical differential tests.
#pragma once

#include <cstdint>
#include <vector>

#include "datacenter/datacenter.h"
#include "datacenter/occupancy.h"

namespace ostro::dc {

class ShardLayout {
 public:
  /// link_owner() value for the shared uplinks of split sites: no shard owns
  /// them; reservations go through the cross-shard ledger.
  static constexpr std::uint32_t kLedgerOwned =
      static_cast<std::uint32_t>(-1);

  /// Partitions `global` into `shard_count` shards.  Throws
  /// std::invalid_argument when shard_count is 0, exceeds the number of
  /// pods, or produces an empty shard (e.g. a host-less site).  `global`
  /// must outlive the layout.
  ShardLayout(const DataCenter& global, std::uint32_t shard_count);

  // Shard DataCenters live at stable addresses (schedulers/occupancies hold
  // pointers into them), so the layout itself must not move.
  ShardLayout(const ShardLayout&) = delete;
  ShardLayout& operator=(const ShardLayout&) = delete;

  [[nodiscard]] const DataCenter& global() const noexcept { return *global_; }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const DataCenter& shard_datacenter(std::uint32_t shard) const {
    return shards_.at(shard).dc;
  }

  // ---- partition queries (global ids) ----
  [[nodiscard]] std::uint32_t shard_of_pod(std::uint32_t pod) const {
    return shard_of_pod_.at(pod);
  }
  [[nodiscard]] std::uint32_t shard_of_host(HostId host) const {
    return shard_of_host_.at(host);
  }
  /// True when the site's pods are spread over more than one shard (its
  /// uplink is then ledger-owned).
  [[nodiscard]] bool site_split(std::uint32_t site) const {
    return site_split_.at(site);
  }

  // ---- host id mapping ----
  [[nodiscard]] HostId to_local_host(HostId global_host) const {
    return local_host_of_.at(global_host);
  }
  [[nodiscard]] HostId to_global_host(std::uint32_t shard,
                                      HostId local_host) const {
    return shards_.at(shard).local_to_global_host.at(local_host);
  }

  // ---- link ownership and mapping ----
  /// Owning shard of a global link, or kLedgerOwned for the shared uplink
  /// of a split site.  Host/rack/pod links are always owned by the shard of
  /// their pod; a site link is owned iff the site is unsplit.
  [[nodiscard]] std::uint32_t link_owner(LinkId global_link) const {
    return link_owner_.at(global_link);
  }
  /// Local id of an OWNED global link in its owner shard.  Only valid when
  /// link_owner() != kLedgerOwned.
  [[nodiscard]] LinkId to_local_link(LinkId global_link) const {
    return local_link_of_.at(global_link);
  }
  [[nodiscard]] LinkId to_global_link(std::uint32_t shard,
                                      LinkId local_link) const {
    return shards_.at(shard).local_to_global_link.at(local_link);
  }
  /// Global ids of every ledger-owned (shared) link, ascending.
  [[nodiscard]] const std::vector<LinkId>& shared_links() const noexcept {
    return shared_links_;
  }

  /// Adds one shard's occupancy (host loads, link reservations, active
  /// flags) onto an occupancy of the GLOBAL DataCenter — the stitch step of
  /// a cross-shard snapshot.  Each touched host/link receives exactly one
  /// op carrying the shard's stored value, so the stitched state is
  /// bit-identical to a monolithic occupancy that performed the same
  /// logical mutations.  `shard_occupancy` must belong to
  /// shard_datacenter(shard); split-site local uplinks always carry zero
  /// (the invariant above), so shared links are never double-counted.
  void overlay(Occupancy& global_occupancy, std::uint32_t shard,
               const Occupancy& shard_occupancy) const;

 private:
  struct Shard {
    DataCenter dc;
    std::vector<HostId> local_to_global_host;
    std::vector<LinkId> local_to_global_link;
  };

  const DataCenter* global_;
  std::vector<Shard> shards_;
  std::vector<std::uint32_t> shard_of_pod_;   // global pod -> shard
  std::vector<std::uint32_t> shard_of_host_;  // global host -> shard
  std::vector<HostId> local_host_of_;         // global host -> local id
  std::vector<std::uint32_t> link_owner_;     // global link -> shard/ledger
  std::vector<LinkId> local_link_of_;         // global link -> local id
  std::vector<LinkId> shared_links_;
  std::vector<bool> site_split_;
};

}  // namespace ostro::dc
