#include "datacenter/state_delta.h"

#include <algorithm>
#include <stdexcept>

#include "util/metrics.h"

namespace ostro::dc {

topo::Resources OccupancyDelta::available(HostId h) const {
  const auto it = host_state_.find(h);
  if (it == host_state_.end()) return base_->available(h);
  return base_->datacenter().host(h).capacity - it->second.effective;
}

double OccupancyDelta::link_available_mbps(LinkId link) const {
  const auto it = link_state_.find(link);
  if (it == link_state_.end()) return base_->link_available_mbps(link);
  return base_->datacenter().link_capacity(link) - it->second.effective;
}

bool OccupancyDelta::is_active(HostId h) const {
  if (base_->is_active(h)) return true;
  return host_state_.find(h) != host_state_.end();
}

void OccupancyDelta::add_host_load(HostId h, const topo::Resources& load) {
  topo::require_nonnegative(load, "OccupancyDelta::add_host_load");
  auto [it, inserted] = host_state_.try_emplace(h);
  if (inserted) {
    it->second.initial = base_->used(h);  // validates h
    it->second.effective = it->second.initial;
  }
  // Same running-value arithmetic and check as Occupancy::add_host_load, so
  // staged acceptance matches what a direct application would decide.
  const topo::Resources next = it->second.effective + load;
  if (!next.fits_within(base_->datacenter().host(h).capacity)) {
    if (inserted) host_state_.erase(it);
    throw std::invalid_argument("OccupancyDelta::add_host_load: host " +
                                base_->datacenter().host(h).name +
                                " over capacity");
  }
  it->second.effective = next;
  host_ops_.push_back({h, load, false});
}

void OccupancyDelta::reserve_link(LinkId link, double mbps) {
  if (mbps < 0.0) {
    throw std::invalid_argument("OccupancyDelta::reserve_link: negative amount");
  }
  auto [it, inserted] = link_state_.try_emplace(link);
  if (inserted) {
    it->second.initial = base_->link_used_mbps(link);  // validates link
    it->second.effective = it->second.initial;
  }
  constexpr double kEps = 1e-9;
  if (it->second.effective + mbps >
      base_->datacenter().link_capacity(link) + kEps) {
    if (inserted) link_state_.erase(it);
    throw std::invalid_argument("OccupancyDelta::reserve_link: link " +
                                base_->datacenter().link_name(link) +
                                " over capacity");
  }
  it->second.effective += mbps;
  link_ops_.push_back({link, mbps, false});
}

void OccupancyDelta::remove_host_load(HostId h, const topo::Resources& load) {
  topo::require_nonnegative(load, "OccupancyDelta::remove_host_load");
  auto [it, inserted] = host_state_.try_emplace(h);
  if (inserted) {
    it->second.initial = base_->used(h);  // validates h
    it->second.effective = it->second.initial;
  }
  // Same running-value arithmetic, epsilon and clamping as
  // Occupancy::remove_host_load, so staged acceptance (and the replayed
  // result) matches a direct application bit for bit.
  const topo::Resources next = it->second.effective - load;
  constexpr double kEps = -1e-6;
  if (next.vcpus < kEps || next.mem_gb < kEps || next.disk_gb < kEps) {
    if (inserted) host_state_.erase(it);
    throw std::invalid_argument(
        "OccupancyDelta::remove_host_load: releasing more than used on " +
        base_->datacenter().host(h).name);
  }
  it->second.effective = {std::max(0.0, next.vcpus),
                          std::max(0.0, next.mem_gb),
                          std::max(0.0, next.disk_gb)};
  host_ops_.push_back({h, load, true});
  has_releases_ = true;
}

void OccupancyDelta::release_link(LinkId link, double mbps) {
  if (mbps < 0.0) {
    throw std::invalid_argument(
        "OccupancyDelta::release_link: negative amount");
  }
  auto [it, inserted] = link_state_.try_emplace(link);
  if (inserted) {
    it->second.initial = base_->link_used_mbps(link);  // validates link
    it->second.effective = it->second.initial;
  }
  if (it->second.effective - mbps < -1e-6) {
    if (inserted) link_state_.erase(it);
    throw std::invalid_argument(
        "OccupancyDelta::release_link: releasing more than reserved on " +
        base_->datacenter().link_name(link));
  }
  it->second.effective = std::max(0.0, it->second.effective - mbps);
  link_ops_.push_back({link, mbps, true});
  has_releases_ = true;
}

void OccupancyDelta::clear() noexcept {
  host_state_.clear();
  link_state_.clear();
  host_ops_.clear();
  link_ops_.clear();
  has_releases_ = false;
}

void Occupancy::apply_delta(const OccupancyDelta& delta) {
  static util::metrics::Counter& m_commits =
      util::metrics::counter("occupancy.delta_commits");
  static util::metrics::Counter& m_link_ops =
      util::metrics::counter("occupancy.delta_link_ops");
  static util::metrics::Counter& m_stale =
      util::metrics::counter("occupancy.delta_stale_rejects");
  if (delta.base_ != this) {
    throw std::logic_error(
        "Occupancy::apply_delta: delta was staged against another occupancy");
  }
  // Reject a stale delta before touching anything: every snapshot taken at
  // first touch must still match, or the staged running values (and their
  // capacity checks) no longer describe this state.  With an up-to-date
  // delta the staged `effective` values already passed the same capacity
  // checks a direct application would run, so the replay below cannot
  // overflow.
  for (const auto& [host, state] : delta.host_state_) {
    if (!(host_used_[host] == state.initial)) {
      m_stale.inc();
      throw std::logic_error(
          "Occupancy::apply_delta: base host state changed since staging");
    }
  }
  for (const auto& [link, state] : delta.link_state_) {
    if (link_used_[link] != state.initial) {
      m_stale.inc();
      throw std::logic_error(
          "Occupancy::apply_delta: base link state changed since staging");
    }
  }
  // Replay the op log in staging order with the exact arithmetic of
  // add_host_load / reserve_link / remove_host_load / release_link, so the
  // result is bit-identical to a direct op-by-op application.  Releases do
  // not touch active flags, matching Occupancy::remove_host_load (the
  // caller decides when an emptied host goes dark — deactivate_if_idle).
  for (const auto& op : delta.host_ops_) {
    if (op.release) {
      const topo::Resources next = host_used_[op.host] - op.load;
      host_used_[op.host] = {std::max(0.0, next.vcpus),
                             std::max(0.0, next.mem_gb),
                             std::max(0.0, next.disk_gb)};
    } else {
      host_used_[op.host] = host_used_[op.host] + op.load;
      if (!active_[op.host]) {
        active_[op.host] = true;
        ++active_count_;
      }
    }
  }
  for (const auto& op : delta.link_ops_) {
    if (op.release) {
      link_used_[op.link] = std::max(0.0, link_used_[op.link] - op.mbps);
    } else {
      link_used_[op.link] += op.mbps;
    }
  }
  // Refresh the feasibility index once per touched host/link (not per op):
  // the aggregates are a function of the final free values, so the result
  // is identical to per-op maintenance on the direct path.
  for (const auto& [host, state] : delta.host_state_) {
    index_host(host);
  }
  for (const auto& [link, state] : delta.link_state_) {
    index_link(link);
  }
  // One epoch per flushed batch: snapshot-staleness detection only needs
  // "did anything change", not an op count.
  if (!delta.host_ops_.empty() || !delta.link_ops_.empty()) ++version_;
  m_commits.inc();
  m_link_ops.add(delta.link_ops_.size());
}

}  // namespace ostro::dc
