#include "datacenter/fragmentation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/metrics.h"

namespace ostro::dc {

namespace {

/// Whole reference-VM units that fit into `free`, ignoring the reference's
/// zero dimensions.  0 when any positive dimension lacks one unit.
std::uint32_t units_of(const topo::Resources& free,
                       const topo::Resources& ref) {
  double units = std::numeric_limits<double>::infinity();
  if (ref.vcpus > 0.0) units = std::min(units, std::floor(free.vcpus / ref.vcpus));
  if (ref.mem_gb > 0.0) units = std::min(units, std::floor(free.mem_gb / ref.mem_gb));
  if (ref.disk_gb > 0.0) units = std::min(units, std::floor(free.disk_gb / ref.disk_gb));
  if (!std::isfinite(units) || units <= 0.0) return 0;
  return static_cast<std::uint32_t>(units);
}

double fraction(double part, double whole) {
  return whole > 0.0 ? part / whole : 0.0;
}

}  // namespace

FragmentationStats compute_fragmentation(const Occupancy& occupancy,
                                         const topo::Resources& reference_vm) {
  topo::require_nonnegative(reference_vm, "compute_fragmentation");
  if (reference_vm.vcpus <= 0.0 && reference_vm.mem_gb <= 0.0 &&
      reference_vm.disk_gb <= 0.0) {
    throw std::invalid_argument(
        "compute_fragmentation: reference VM has no positive dimension");
  }
  const DataCenter& dc = occupancy.datacenter();
  const FeasibilityIndex& index = occupancy.feasibility();
  FragmentationStats stats;

  double capacity_cpu = 0.0;
  double capacity_mem = 0.0;
  double free_uplink_total = 0.0;
  double free_uplink_stranded = 0.0;
  std::uint64_t total_units = 0;
  for (HostId h = 0; h < dc.host_count(); ++h) {
    const topo::Resources& free = index.host_free(h);
    capacity_cpu += dc.host(h).capacity.vcpus;
    capacity_mem += dc.host(h).capacity.mem_gb;
    stats.total_free_cpu += free.vcpus;
    stats.total_free_mem += free.mem_gb;
    const std::uint32_t units = units_of(free, reference_vm);
    total_units += units;
    stats.usable_free_cpu += units * reference_vm.vcpus;
    stats.usable_free_mem += units * reference_vm.mem_gb;
    const double uplink_free = index.host_uplink_free(h);
    free_uplink_total += uplink_free;
    if (units == 0) free_uplink_stranded += uplink_free;
  }

  stats.used_cpu_fraction =
      fraction(capacity_cpu - stats.total_free_cpu, capacity_cpu);
  stats.used_mem_fraction =
      fraction(capacity_mem - stats.total_free_mem, capacity_mem);
  stats.active_host_fraction =
      fraction(static_cast<double>(occupancy.active_host_count()),
               static_cast<double>(dc.host_count()));
  stats.feasible_host_fraction =
      fraction(static_cast<double>(index.root().feasible_hosts),
               static_cast<double>(dc.host_count()));
  stats.unusable_free_cpu_fraction = fraction(
      stats.total_free_cpu - stats.usable_free_cpu, stats.total_free_cpu);
  stats.unusable_free_mem_fraction = fraction(
      stats.total_free_mem - stats.usable_free_mem, stats.total_free_mem);
  stats.frag_index = std::max(stats.unusable_free_cpu_fraction,
                              stats.unusable_free_mem_fraction);
  stats.stranded_uplink_fraction =
      fraction(free_uplink_stranded, free_uplink_total);
  stats.total_placeable_vms = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(total_units, UINT32_MAX));

  // Per-rack pass: dispersion of free CPU and the best single-rack stack.
  double rack_sum = 0.0;
  double rack_sum_sq = 0.0;
  for (const Rack& rack : dc.racks()) {
    double rack_free_cpu = 0.0;
    std::uint64_t rack_units = 0;
    for (const HostId h : rack.hosts) {
      rack_free_cpu += index.host_free(h).vcpus;
      rack_units += units_of(index.host_free(h), reference_vm);
    }
    rack_sum += rack_free_cpu;
    rack_sum_sq += rack_free_cpu * rack_free_cpu;
    stats.largest_placeable_stack_vms =
        std::max(stats.largest_placeable_stack_vms,
                 static_cast<std::uint32_t>(
                     std::min<std::uint64_t>(rack_units, UINT32_MAX)));
  }
  // Dispersion (coefficient of variation) of per-rack free CPU.  The
  // degenerate cases — no racks at all, host-less racks only, or zero free
  // CPU everywhere — must report 0, never the NaN a 0/0 mean would produce
  // downstream in the frag.* summaries.
  const double rack_count = static_cast<double>(dc.racks().size());
  if (rack_count <= 0.0 || rack_sum <= 0.0) {
    stats.rack_free_cpu_cv = 0.0;
  } else {
    const double mean = rack_sum / rack_count;
    const double variance =
        std::max(0.0, rack_sum_sq / rack_count - mean * mean);
    stats.rack_free_cpu_cv = std::sqrt(variance) / mean;
  }
  return stats;
}

FragmentationStats observe_fragmentation(const Occupancy& occupancy,
                                         const topo::Resources& reference_vm) {
  static util::metrics::Summary& m_index =
      util::metrics::summary("frag.index");
  static util::metrics::Summary& m_cpu =
      util::metrics::summary("frag.unusable_free_cpu_fraction");
  static util::metrics::Summary& m_mem =
      util::metrics::summary("frag.unusable_free_mem_fraction");
  static util::metrics::Summary& m_uplink =
      util::metrics::summary("frag.stranded_uplink_fraction");
  static util::metrics::Summary& m_feasible =
      util::metrics::summary("frag.feasible_host_fraction");
  static util::metrics::Summary& m_stack =
      util::metrics::summary("frag.largest_placeable_stack_vms");
  static util::metrics::Summary& m_cv =
      util::metrics::summary("frag.rack_free_cpu_cv");
  const FragmentationStats stats =
      compute_fragmentation(occupancy, reference_vm);
  m_index.observe(stats.frag_index);
  m_cpu.observe(stats.unusable_free_cpu_fraction);
  m_mem.observe(stats.unusable_free_mem_fraction);
  m_uplink.observe(stats.stranded_uplink_fraction);
  m_feasible.observe(stats.feasible_host_fraction);
  m_stack.observe(static_cast<double>(stats.largest_placeable_stack_vms));
  m_cv.observe(stats.rack_free_cpu_cv);
  return stats;
}

}  // namespace ostro::dc
