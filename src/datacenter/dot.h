// Graphviz (DOT) rendering of application topologies and placements — the
// Figure 2 / Figure 5 pictures of the paper, generated from live objects.
//
//   dot -Tsvg app.dot -o app.svg
//
// Topologies render nodes (VMs as boxes, volumes as cylinders) with their
// requirements, pipes with bandwidth (and latency budget) labels, and
// diversity zones / affinity groups as dashed or solid clusters.  Placement
// rendering groups nodes by the host that received them instead.
#pragma once

#include <string>

#include "datacenter/datacenter.h"
#include "topology/app_topology.h"

namespace ostro::dc {

/// DOT document for the logical topology.
[[nodiscard]] std::string topology_to_dot(const topo::AppTopology& topology);

/// DOT document for a placement: nodes clustered by assigned host.
[[nodiscard]] std::string placement_to_dot(
    const topo::AppTopology& topology,
    const std::vector<std::uint32_t>& assignment,
    const DataCenter& datacenter);

}  // namespace ostro::dc
