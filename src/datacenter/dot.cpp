#include "datacenter/dot.h"

#include <map>

#include "datacenter/datacenter.h"
#include "util/string_util.h"

namespace ostro::dc {

using topo::AppTopology;
using topo::Node;
using topo::NodeId;
using topo::NodeKind;
using topo::to_string;
namespace {

/// Escapes a string for use inside a DOT double-quoted id/label.
[[nodiscard]] std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

[[nodiscard]] std::string node_statement(const Node& node) {
  if (node.kind == NodeKind::kVolume) {
    return util::format("  \"%s\" [shape=cylinder, label=\"%s\\n%g GB\"];\n",
                        escape(node.name).c_str(), escape(node.name).c_str(),
                        node.requirements.disk_gb);
  }
  std::string label = util::format("%s\\n%g vCPU / %g GB",
                                   escape(node.name).c_str(),
                                   node.requirements.vcpus,
                                   node.requirements.mem_gb);
  if (!node.required_tags.empty()) {
    label += "\\n[";
    for (std::size_t i = 0; i < node.required_tags.size(); ++i) {
      if (i != 0) label += ",";
      label += escape(node.required_tags[i]);
    }
    label += "]";
  }
  return util::format("  \"%s\" [shape=box, label=\"%s\"];\n",
                      escape(node.name).c_str(), label.c_str());
}

void append_edges(const AppTopology& topology, std::string& out) {
  for (const auto& edge : topology.edges()) {
    std::string label = util::format("%g Mbps", edge.bandwidth_mbps);
    if (edge.max_latency_us > 0.0) {
      label += util::format("\\n<= %g us", edge.max_latency_us);
    }
    out += util::format("  \"%s\" -- \"%s\" [label=\"%s\"];\n",
                        escape(topology.node(edge.a).name).c_str(),
                        escape(topology.node(edge.b).name).c_str(),
                        label.c_str());
  }
}

}  // namespace

std::string topology_to_dot(const AppTopology& topology) {
  std::string out = "graph application {\n  overlap=false;\n";
  // Group clusters: diversity zones dashed, affinity groups solid.
  std::size_t cluster = 0;
  for (const auto& zone : topology.zones()) {
    out += util::format(
        "  subgraph cluster_%zu {\n    label=\"dz:%s (%s)\";\n"
        "    style=dashed;\n",
        cluster++, escape(zone.name).c_str(), to_string(zone.level));
    for (const NodeId member : zone.members) {
      out += util::format("    \"%s\";\n",
                          escape(topology.node(member).name).c_str());
    }
    out += "  }\n";
  }
  for (const auto& group : topology.affinities()) {
    out += util::format(
        "  subgraph cluster_%zu {\n    label=\"affinity:%s (%s)\";\n"
        "    style=solid;\n",
        cluster++, escape(group.name).c_str(), to_string(group.level));
    for (const NodeId member : group.members) {
      out += util::format("    \"%s\";\n",
                          escape(topology.node(member).name).c_str());
    }
    out += "  }\n";
  }
  for (const auto& node : topology.nodes()) out += node_statement(node);
  append_edges(topology, out);
  out += "}\n";
  return out;
}

std::string placement_to_dot(const AppTopology& topology,
                             const std::vector<std::uint32_t>& assignment,
                             const DataCenter& datacenter) {
  if (assignment.size() != topology.node_count()) {
    throw std::invalid_argument("placement_to_dot: assignment size mismatch");
  }
  // Bucket nodes by host (ordered for stable output).
  std::map<std::uint32_t, std::vector<NodeId>> by_host;
  for (NodeId v = 0; v < assignment.size(); ++v) {
    if (assignment[v] >= datacenter.host_count()) {
      throw std::invalid_argument("placement_to_dot: node " +
                                  topology.node(v).name + " unplaced");
    }
    by_host[assignment[v]].push_back(v);
  }

  std::string out = "graph placement {\n  overlap=false;\n";
  std::size_t cluster = 0;
  for (const auto& [host, members] : by_host) {
    const auto& meta = datacenter.host(host);
    out += util::format(
        "  subgraph cluster_%zu {\n    label=\"%s (rack %s)\";\n"
        "    style=filled;\n    fillcolor=gray95;\n",
        cluster++, escape(meta.name).c_str(),
        escape(datacenter.racks()[meta.rack].name).c_str());
    for (const NodeId member : members) {
      out += "  " + node_statement(topology.node(member));
    }
    out += "  }\n";
  }
  append_edges(topology, out);
  out += "}\n";
  return out;
}

}  // namespace ostro::dc
