#include "datacenter/feasibility_index.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ostro::dc {
namespace {

/// Maximum over an empty host set: nothing fits, every request is rejected.
constexpr double kNoHosts = std::numeric_limits<double>::lowest();

[[nodiscard]] bool is_feasible(const topo::Resources& free) noexcept {
  return free.vcpus > 0.0 && free.mem_gb > 0.0 && free.disk_gb > 0.0;
}

/// New maximum of a level after one child's value moved old_v -> new_v.
/// `recompute` rescans every child of the level; it runs only when the
/// child that shrank may have been the one attaining the current maximum
/// (old_v >= current), so the common case is O(1).
template <class Recompute>
[[nodiscard]] double updated_max(double current, double old_v, double new_v,
                                 Recompute recompute) {
  if (new_v >= current) return new_v;
  if (old_v < current) return current;
  return recompute();
}

}  // namespace

void FeasibilityIndex::rebuild(const DataCenter& dc,
                               std::vector<topo::Resources> host_free,
                               std::vector<double> host_uplink_free) {
  if (host_free.size() != dc.host_count() ||
      host_uplink_free.size() != dc.host_count()) {
    throw std::invalid_argument(
        "FeasibilityIndex::rebuild: per-host vectors must cover every host");
  }
  dc_ = &dc;
  host_free_ = std::move(host_free);
  host_uplink_free_ = std::move(host_uplink_free);

  const Aggregate empty{{kNoHosts, kNoHosts, kNoHosts}, kNoHosts, 0, 0};
  rack_.assign(dc.racks().size(), empty);
  pod_.assign(dc.pods().size(), empty);
  site_.assign(dc.sites().size(), empty);
  root_ = empty;

  for (HostId h = 0; h < host_free_.size(); ++h) {
    const HostAncestors& anc = dc.ancestors(h);
    const topo::Resources& free = host_free_[h];
    const double uplink = host_uplink_free_[h];
    const std::uint32_t feasible = is_feasible(free) ? 1 : 0;
    Aggregate* chain[] = {&rack_[anc.rack], &pod_[anc.pod], &site_[anc.site],
                          &root_};
    for (Aggregate* agg : chain) {
      agg->max_free.vcpus = std::max(agg->max_free.vcpus, free.vcpus);
      agg->max_free.mem_gb = std::max(agg->max_free.mem_gb, free.mem_gb);
      agg->max_free.disk_gb = std::max(agg->max_free.disk_gb, free.disk_gb);
      agg->max_free_uplink_mbps = std::max(agg->max_free_uplink_mbps, uplink);
      agg->feasible_hosts += feasible;
      agg->host_count += 1;
    }
  }
}

void FeasibilityIndex::bump_feasible(const HostAncestors& anc,
                                     std::int32_t delta) {
  const auto bump = [delta](std::uint32_t& count) {
    count = static_cast<std::uint32_t>(static_cast<std::int64_t>(count) +
                                       delta);
  };
  bump(rack_[anc.rack].feasible_hosts);
  bump(pod_[anc.pod].feasible_hosts);
  bump(site_[anc.site].feasible_hosts);
  bump(root_.feasible_hosts);
}

void FeasibilityIndex::refresh_max_chain(const HostAncestors& anc,
                                         double old_v, double new_v,
                                         double topo::Resources::* field) {
  if (old_v == new_v) return;
  const Rack& rack = dc_->racks()[anc.rack];
  double& rack_max = rack_[anc.rack].max_free.*field;
  const double rack_old = rack_max;
  rack_max = updated_max(rack_max, old_v, new_v, [&] {
    double m = kNoHosts;
    for (const HostId x : rack.hosts) m = std::max(m, host_free_[x].*field);
    return m;
  });
  if (rack_max == rack_old) return;

  const Pod& pod = dc_->pods()[anc.pod];
  double& pod_max = pod_[anc.pod].max_free.*field;
  const double pod_old = pod_max;
  pod_max = updated_max(pod_max, rack_old, rack_max, [&] {
    double m = kNoHosts;
    for (const std::uint32_t r : pod.racks) {
      m = std::max(m, rack_[r].max_free.*field);
    }
    return m;
  });
  if (pod_max == pod_old) return;

  const Site& site = dc_->sites()[anc.site];
  double& site_max = site_[anc.site].max_free.*field;
  const double site_old = site_max;
  site_max = updated_max(site_max, pod_old, pod_max, [&] {
    double m = kNoHosts;
    for (const std::uint32_t p : site.pods) {
      m = std::max(m, pod_[p].max_free.*field);
    }
    return m;
  });
  if (site_max == site_old) return;

  root_.max_free.*field = updated_max(root_.max_free.*field, site_old,
                                      site_max, [&] {
    double m = kNoHosts;
    for (const Aggregate& s : site_) m = std::max(m, s.max_free.*field);
    return m;
  });
}

void FeasibilityIndex::refresh_uplink_chain(const HostAncestors& anc,
                                            double old_v, double new_v) {
  if (old_v == new_v) return;
  const Rack& rack = dc_->racks()[anc.rack];
  double& rack_max = rack_[anc.rack].max_free_uplink_mbps;
  const double rack_old = rack_max;
  rack_max = updated_max(rack_max, old_v, new_v, [&] {
    double m = kNoHosts;
    for (const HostId x : rack.hosts) m = std::max(m, host_uplink_free_[x]);
    return m;
  });
  if (rack_max == rack_old) return;

  const Pod& pod = dc_->pods()[anc.pod];
  double& pod_max = pod_[anc.pod].max_free_uplink_mbps;
  const double pod_old = pod_max;
  pod_max = updated_max(pod_max, rack_old, rack_max, [&] {
    double m = kNoHosts;
    for (const std::uint32_t r : pod.racks) {
      m = std::max(m, rack_[r].max_free_uplink_mbps);
    }
    return m;
  });
  if (pod_max == pod_old) return;

  const Site& site = dc_->sites()[anc.site];
  double& site_max = site_[anc.site].max_free_uplink_mbps;
  const double site_old = site_max;
  site_max = updated_max(site_max, pod_old, pod_max, [&] {
    double m = kNoHosts;
    for (const std::uint32_t p : site.pods) {
      m = std::max(m, pod_[p].max_free_uplink_mbps);
    }
    return m;
  });
  if (site_max == site_old) return;

  root_.max_free_uplink_mbps =
      updated_max(root_.max_free_uplink_mbps, site_old, site_max, [&] {
        double m = kNoHosts;
        for (const Aggregate& s : site_) {
          m = std::max(m, s.max_free_uplink_mbps);
        }
        return m;
      });
}

void FeasibilityIndex::set_host_free(HostId h, const topo::Resources& free) {
  const topo::Resources old = host_free_[h];
  host_free_[h] = free;
  const HostAncestors& anc = dc_->ancestors(h);
  const bool was = is_feasible(old);
  const bool now = is_feasible(free);
  if (was != now) bump_feasible(anc, now ? 1 : -1);
  refresh_max_chain(anc, old.vcpus, free.vcpus, &topo::Resources::vcpus);
  refresh_max_chain(anc, old.mem_gb, free.mem_gb, &topo::Resources::mem_gb);
  refresh_max_chain(anc, old.disk_gb, free.disk_gb, &topo::Resources::disk_gb);
}

void FeasibilityIndex::set_host_uplink_free(HostId h, double free_mbps) {
  const double old = host_uplink_free_[h];
  host_uplink_free_[h] = free_mbps;
  refresh_uplink_chain(dc_->ancestors(h), old, free_mbps);
}

bool FeasibilityIndex::selfcheck() const {
  if (dc_ == nullptr) return host_free_.empty();
  FeasibilityIndex fresh;
  fresh.rebuild(*dc_, host_free_, host_uplink_free_);
  return fresh == *this;
}

}  // namespace ostro::dc
