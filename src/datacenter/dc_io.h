// Data-center and occupancy (de)serialization.
//
// A deployment describes its fleet once as a JSON document and feeds it to
// the CLI / scheduler; occupancy snapshots round-trip the mutable state so
// placement sessions can persist across runs.
//
//   {
//     "scope_latencies_us": [5, 25, 80, 200, 2000],       // optional
//     "sites": [
//       {"name": "dc-east", "uplink_mbps": 400000,
//        "pods": [
//          {"name": "pod-1", "uplink_mbps": 100000,
//           "racks": [
//             {"name": "rack-1", "uplink_mbps": 40000,
//              "hosts": [
//                {"name": "host-1", "vcpus": 16, "mem_gb": 64,
//                 "disk_gb": 2000, "uplink_mbps": 10000,
//                 "tags": ["ssd"]}                          // optional
//              ]}]}]}]
//   }
//
// Occupancy documents record per-host used resources and per-link reserved
// bandwidth keyed by the names link_name() produces:
//
//   {"hosts": {"host-1": {"vcpus": 4, "mem_gb": 8, "disk_gb": 100,
//                         "active": true}},
//    "links": {"host:host-1": 300.0, "tor:rack-1": 300.0}}
#pragma once

#include <stdexcept>
#include <string>

#include "datacenter/occupancy.h"
#include "util/json.h"

namespace ostro::dc {

class DcIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a data-center document; throws DcIoError on malformed input.
[[nodiscard]] DataCenter datacenter_from_json(const util::Json& document);
[[nodiscard]] DataCenter datacenter_from_text(const std::string& text);

/// Serializes the full structure (capacities, tags, latencies).
[[nodiscard]] util::Json datacenter_to_json(const DataCenter& datacenter);

/// Serializes the occupancy deltas (only hosts/links with usage).
[[nodiscard]] util::Json occupancy_to_json(const Occupancy& occupancy);

/// Restores an occupancy over `datacenter`; unknown host/link names or
/// over-capacity loads throw DcIoError.  `datacenter` must outlive the
/// result.
[[nodiscard]] Occupancy occupancy_from_json(const DataCenter& datacenter,
                                            const util::Json& document);
[[nodiscard]] Occupancy occupancy_from_text(const DataCenter& datacenter,
                                            const std::string& text);

}  // namespace ostro::dc
