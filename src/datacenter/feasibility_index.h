// Hierarchical feasibility index: per-subtree aggregates over host free
// capacity, maintained incrementally by Occupancy.
//
// For every unit of the data-center tree (rack, pod, site, and the root)
// the index keeps
//   * the component-wise maximum free CPU / memory / disk over the hosts of
//     the subtree,
//   * the maximum free host-uplink bandwidth over those hosts,
//   * the number of "feasible" hosts (strictly positive free capacity in
//     every dimension), and
//   * the static host count of the subtree.
//
// Candidate generation (core::get_candidates) descends the tree and skips a
// whole subtree when its aggregates cannot satisfy a node's requirements —
// the aggregates are upper bounds on what any single host in the subtree
// offers, so a subtree they reject contains no feasible host and the prune
// is sound (never drops a host the linear scan would keep).  Search-side
// overlays (core::PartialPlacement deltas, OccupancyDelta staging) only
// consume capacity on top of the base, so the base aggregates stay sound
// upper bounds for the overlay views as well.
//
// Update cost: set_host_free / set_host_uplink_free walk the ancestor chain
// (rack -> pod -> site -> root).  A level rescans its direct children only
// when the child that changed previously attained the level's maximum and
// shrank; otherwise the level updates in O(1) and the walk stops as soon as
// a level's aggregate is unchanged.  Feasible-host counts always update in
// exact O(depth).  See DESIGN.md section 7 for the invariants.
#pragma once

#include <cstdint>
#include <vector>

#include "datacenter/datacenter.h"
#include "topology/resources.h"

namespace ostro::dc {

class FeasibilityIndex {
 public:
  struct Aggregate {
    /// Component-wise max over the free resources of the subtree's hosts.
    /// Not attained by one host in general: the max-CPU host and the
    /// max-memory host may differ, which is exactly why rejecting a request
    /// against it is sound while accepting still needs the per-host check.
    topo::Resources max_free;
    /// Max free host->ToR uplink bandwidth over the subtree's hosts.
    double max_free_uplink_mbps = 0.0;
    /// Hosts with strictly positive free capacity in every dimension.
    std::uint32_t feasible_hosts = 0;
    /// Static number of hosts in the subtree.
    std::uint32_t host_count = 0;

    friend bool operator==(const Aggregate&, const Aggregate&) = default;
  };

  FeasibilityIndex() = default;

  /// Derives every aggregate from scratch.  `host_free` / `host_uplink_free`
  /// are indexed by HostId and must cover every host of `dc`.  The
  /// DataCenter reference must outlive the index.
  void rebuild(const DataCenter& dc,
               std::vector<topo::Resources> host_free,
               std::vector<double> host_uplink_free);

  // ---- incremental updates (called by Occupancy's mutators) ----
  /// Records host `h` now having `free` resources and refreshes the
  /// aggregates along its ancestor chain.
  void set_host_free(HostId h, const topo::Resources& free);
  /// Same for the host's free uplink bandwidth.
  void set_host_uplink_free(HostId h, double free_mbps);

  // ---- queries ----
  [[nodiscard]] const Aggregate& rack(std::uint32_t r) const {
    return rack_[r];
  }
  [[nodiscard]] const Aggregate& pod(std::uint32_t p) const { return pod_[p]; }
  [[nodiscard]] const Aggregate& site(std::uint32_t s) const {
    return site_[s];
  }
  [[nodiscard]] const Aggregate& root() const noexcept { return root_; }
  [[nodiscard]] const topo::Resources& host_free(HostId h) const {
    return host_free_[h];
  }
  [[nodiscard]] double host_uplink_free(HostId h) const {
    return host_uplink_free_[h];
  }

  /// True when every aggregate equals a from-scratch rebuild over the
  /// currently recorded per-host values — the invariant the incremental
  /// updates must preserve.  Test hook; O(hosts).
  [[nodiscard]] bool selfcheck() const;

  friend bool operator==(const FeasibilityIndex&,
                         const FeasibilityIndex&) = default;

 private:
  /// Refreshes one scalar aggregate along the ancestor chain of `h` after
  /// the per-host value changed from `old_v` to `new_v`.
  void refresh_max_chain(const HostAncestors& anc, double old_v, double new_v,
                         double topo::Resources::* field);
  void refresh_uplink_chain(const HostAncestors& anc, double old_v,
                            double new_v);
  void bump_feasible(const HostAncestors& anc, std::int32_t delta);

  const DataCenter* dc_ = nullptr;
  std::vector<topo::Resources> host_free_;
  std::vector<double> host_uplink_free_;
  std::vector<Aggregate> rack_;
  std::vector<Aggregate> pod_;
  std::vector<Aggregate> site_;
  Aggregate root_;
};

}  // namespace ostro::dc
