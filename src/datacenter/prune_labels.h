// Precomputed subtree pruning labels (DESIGN.md section 12): O(1)
// admissible-bound tighteners and tag-reachability bitmaps derived from the
// data-center tree plus the FeasibilityIndex.
//
// Three label families, all refreshed by the same O(depth) per-commit hook
// that keeps the FeasibilityIndex current (Occupancy::index_host):
//
//   * Separation-feasibility counters.  For each level of T_p, how many
//     units can still host a *pair* of nodes separated exactly at that
//     level: racks with >= 2 feasible hosts, pods with >= 2 racks each
//     holding a feasible host, sites with >= 2 pods each holding a feasible
//     host.  "Feasible" here is deliberately weaker than the
//     FeasibilityIndex predicate: strictly positive free *compute* (vcpus
//     and mem_gb), ignoring disk.  The counters are used only to conclude
//     impossibility ("zero units left"), so they must OVER-approximate the
//     hosts that could receive a node — and a disk-exhausted host can still
//     receive a zero-disk VM, the common case in the paper's workloads.
//     Requests that need compute can never land on a compute-exhausted
//     host, so a zero counter rules out every completion.  When a counter
//     is zero, no completion of any plan can realize that separation —
//     every host that receives a node in a feasible completion must have
//     been feasible in the base state, because plans only consume capacity
//     on top of it — so the admissible bound may price the pipe at the next
//     level up.  Static floors (racks with >= 2 hosts, ...) give the same
//     escalation independent of occupancy for compute-free nodes (volumes).
//
//   * Host-anchored climb labels.  For a pipe between a placed node and a
//     free one, the FeasibilityIndex aggregates along the placed host's
//     ancestor chain bound what any completion can do below each level:
//     when the free node cannot fit / find a distinct feasible host / carry
//     its bandwidth inside the rack, the pipe costs at least same-pod hops,
//     and so on up the chain.
//
//   * Tag-reachability bitmaps.  Hardware tags are immutable, so each
//     distinct tag gets one bit (up to 64; more disables this family) and
//     every subtree caches the OR of its hosts' masks.  Candidate descent
//     skips a subtree whose mask lacks a required bit — no host below can
//     pass the per-host tag check.
//
// Every tightening is a *lower bound* argument: escalating a pipe's scope
// never exceeds the cost of any feasible completion, so BA*/DBA* remain
// admissible (bit-identical optima) while expanding fewer states.  The
// counters are maintained against the BASE occupancy only; search overlays
// (PartialPlacement, OccupancyDelta) never mutate it mid-plan, so during
// one search the tighteners are a fixed monotone function of the entry
// scope — exactly what the lazy-priority invariant of the open queue needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datacenter/datacenter.h"
#include "datacenter/feasibility_index.h"
#include "topology/resources.h"

namespace ostro::dc {

class PruneLabels {
 public:
  PruneLabels() = default;

  /// Derives every label from scratch.  `index` must already describe the
  /// same occupancy state this object will be maintained against; the
  /// DataCenter reference must outlive the labels.
  void rebuild(const DataCenter& dc, const FeasibilityIndex& index);

  /// Incremental refresh: host `h` now has `free` resources.  O(depth) —
  /// counters only move when the host crosses a feasibility boundary, and
  /// each level's update is O(1).  Called by Occupancy::index_host right
  /// next to FeasibilityIndex::set_host_free.  Uplink changes need no hook:
  /// the climb reads uplink headroom straight from the index.
  void on_host_update(HostId h, const topo::Resources& free);

  // ---- admissible-bound queries (all O(1) / O(depth <= 3)) ----

  /// Escalates the scope of a pipe between two *free* nodes as far as the
  /// separation-feasibility counters allow: if no rack can hold two
  /// distinct (feasible, when `both_positive`) hosts, same-rack becomes
  /// same-pod, and so on up the ladder.  Monotone in `scope`; identity for
  /// kSameHost/kCrossSite.  `both_positive` must be true only when both
  /// endpoints require compute (vcpus and mem_gb > 0) — such nodes can
  /// never land on a compute-exhausted host, so the counters bound their
  /// placements; volumes fit on compute-exhausted hosts, which only the
  /// static floors exclude.
  [[nodiscard]] Scope tighten_separation(Scope scope, bool both_positive) const;

  /// Escalates the scope of a pipe between a free node (requirements
  /// `req`, `positive` iff it requires compute — vcpus and mem_gb > 0 —
  /// pipe bandwidth `bw_mbps`) and a node already placed on `host`, by
  /// climbing the host's ancestor chain: a level that cannot fit the free
  /// node (index max_free), offer it a feasible host distinct from `host`'s
  /// subtree usage (the labels' own compute-feasible counts), or carry
  /// `bw_mbps` on any member uplink pushes the pipe one level up.
  /// Monotone in `scope`; identity for kSameHost (co-location is priced by
  /// the caller's capacity check, not by the labels).
  [[nodiscard]] Scope tighten_to_host(Scope scope, HostId host,
                                      const topo::Resources& req,
                                      bool positive, double bw_mbps,
                                      const FeasibilityIndex& index) const;

  // ---- tag-reachability bitmaps ----

  /// True when every distinct hardware tag got a bit (<= 64 tags in the
  /// data center).  When false the bitmap family is disabled and callers
  /// must fall back to per-host tag checks alone.
  [[nodiscard]] bool tags_indexable() const noexcept {
    return dc_ != nullptr && !tag_overflow_;
  }

  /// Bitmask of `required` over the tag registry.  A required tag carried
  /// by no host in the data center yields the all-ones mask, which no
  /// subtree mask can cover — the caller then prunes everything, matching
  /// the per-host check that would reject every host.
  [[nodiscard]] std::uint64_t required_tag_mask(
      const std::vector<std::string>& required) const noexcept;

  [[nodiscard]] std::uint64_t host_tag_mask(HostId h) const noexcept {
    return host_tag_mask_[h];
  }
  [[nodiscard]] std::uint64_t rack_tag_mask(std::uint32_t r) const noexcept {
    return rack_tag_mask_[r];
  }
  [[nodiscard]] std::uint64_t pod_tag_mask(std::uint32_t p) const noexcept {
    return pod_tag_mask_[p];
  }
  [[nodiscard]] std::uint64_t site_tag_mask(std::uint32_t s) const noexcept {
    return site_tag_mask_[s];
  }

  // ---- counter accessors (tests, metrics) ----
  [[nodiscard]] std::uint32_t racks_with_multi_feasible() const noexcept {
    return racks_multi_feasible_;
  }
  [[nodiscard]] std::uint32_t pods_with_multi_feasible_racks() const noexcept {
    return pods_multi_feasible_racks_;
  }
  [[nodiscard]] std::uint32_t sites_with_multi_feasible_pods() const noexcept {
    return sites_multi_feasible_pods_;
  }
  [[nodiscard]] std::uint32_t static_multi_host_racks() const noexcept {
    return static_multi_host_racks_;
  }
  [[nodiscard]] std::uint32_t static_multi_rack_pods() const noexcept {
    return static_multi_rack_pods_;
  }
  [[nodiscard]] std::uint32_t static_multi_pod_sites() const noexcept {
    return static_multi_pod_sites_;
  }

  /// True when every counter equals a from-scratch rebuild against `index`
  /// — the invariant on_host_update must preserve.  Test hook; O(hosts).
  [[nodiscard]] bool selfcheck(const FeasibilityIndex& index) const;

  friend bool operator==(const PruneLabels&, const PruneLabels&) = default;

 private:
  const DataCenter* dc_ = nullptr;

  // Dynamic separation-feasibility state, maintained by on_host_update.
  std::vector<std::uint8_t> host_feasible_;
  std::vector<std::uint32_t> rack_feasible_hosts_;
  std::vector<std::uint32_t> pod_feasible_hosts_;
  std::vector<std::uint32_t> site_feasible_hosts_;
  std::vector<std::uint32_t> pod_feasible_racks_;
  std::vector<std::uint32_t> site_feasible_pods_;
  std::uint32_t racks_multi_feasible_ = 0;    ///< racks with >= 2 feasible hosts
  std::uint32_t pods_multi_feasible_racks_ = 0;   ///< pods, >= 2 feasible racks
  std::uint32_t sites_multi_feasible_pods_ = 0;   ///< sites, >= 2 feasible pods

  // Static floors (topology only, never refreshed).
  std::uint32_t static_multi_host_racks_ = 0;
  std::uint32_t static_multi_rack_pods_ = 0;
  std::uint32_t static_multi_pod_sites_ = 0;

  // Tag registry (immutable after rebuild).
  std::vector<std::string> tag_names_;  ///< sorted; index = bit position
  bool tag_overflow_ = false;
  std::vector<std::uint64_t> host_tag_mask_;
  std::vector<std::uint64_t> rack_tag_mask_;
  std::vector<std::uint64_t> pod_tag_mask_;
  std::vector<std::uint64_t> site_tag_mask_;
};

}  // namespace ostro::dc
