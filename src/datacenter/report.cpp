#include "datacenter/report.h"

#include "util/string_util.h"

namespace ostro::dc {
namespace {

[[nodiscard]] double fraction(double used, double capacity) noexcept {
  return capacity > 0.0 ? used / capacity : 0.0;
}

}  // namespace

double UtilizationReport::cpu_fraction() const noexcept {
  return fraction(cpu_used, cpu_capacity);
}

double UtilizationReport::mem_fraction() const noexcept {
  return fraction(mem_used_gb, mem_capacity_gb);
}

double UtilizationReport::disk_fraction() const noexcept {
  return fraction(disk_used_gb, disk_capacity_gb);
}

std::string UtilizationReport::to_string() const {
  std::string out = util::format(
      "data center: %zu/%zu hosts active; cpu %.1f%%, mem %.1f%%, disk "
      "%.1f%%; %.1f Gbps reserved\n",
      active_hosts, hosts, 100.0 * cpu_fraction(), 100.0 * mem_fraction(),
      100.0 * disk_fraction(), bandwidth_reserved_mbps / 1000.0);
  for (const auto& rack : racks) {
    out += util::format(
        "  %-16s %2zu/%2zu hosts  cpu %5.1f%%  mem %5.1f%%  uplinks %5.1f%%  "
        "tor %5.1f%%\n",
        rack.name.c_str(), rack.active_hosts, rack.hosts,
        100.0 * fraction(rack.cpu_used, rack.cpu_capacity),
        100.0 * fraction(rack.mem_used_gb, rack.mem_capacity_gb),
        100.0 * fraction(rack.host_uplink_used_mbps,
                         rack.host_uplink_capacity_mbps),
        100.0 * fraction(rack.tor_used_mbps, rack.tor_capacity_mbps));
  }
  return out;
}

UtilizationReport utilization_report(const Occupancy& occupancy) {
  const DataCenter& datacenter = occupancy.datacenter();
  UtilizationReport report;
  report.hosts = datacenter.host_count();
  report.active_hosts = occupancy.active_host_count();
  report.racks.reserve(datacenter.racks().size());

  for (const auto& rack : datacenter.racks()) {
    RackUtilization ru;
    ru.rack = rack.id;
    ru.name = rack.name;
    ru.hosts = rack.hosts.size();
    for (const HostId host : rack.hosts) {
      const Host& h = datacenter.host(host);
      const topo::Resources used = occupancy.used(host);
      ru.cpu_used += used.vcpus;
      ru.cpu_capacity += h.capacity.vcpus;
      ru.mem_used_gb += used.mem_gb;
      ru.mem_capacity_gb += h.capacity.mem_gb;
      ru.disk_used_gb += used.disk_gb;
      ru.disk_capacity_gb += h.capacity.disk_gb;
      ru.host_uplink_used_mbps +=
          occupancy.link_used_mbps(datacenter.host_link(host));
      ru.host_uplink_capacity_mbps += h.uplink_mbps;
      if (occupancy.is_active(host)) ++ru.active_hosts;
    }
    ru.tor_used_mbps = occupancy.link_used_mbps(datacenter.rack_link(rack.id));
    ru.tor_capacity_mbps = rack.uplink_mbps;

    report.cpu_used += ru.cpu_used;
    report.cpu_capacity += ru.cpu_capacity;
    report.mem_used_gb += ru.mem_used_gb;
    report.mem_capacity_gb += ru.mem_capacity_gb;
    report.disk_used_gb += ru.disk_used_gb;
    report.disk_capacity_gb += ru.disk_capacity_gb;
    report.racks.push_back(std::move(ru));
  }
  report.bandwidth_reserved_mbps = occupancy.total_reserved_mbps();
  return report;
}

}  // namespace ostro::dc
