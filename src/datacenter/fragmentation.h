// Fragmentation metrics over an Occupancy (DESIGN.md section 13).
//
// A long-running cluster under churn ends up with plenty of free capacity
// that no request can use: slivers of CPU on memory-exhausted hosts, free
// uplink bandwidth behind full hosts, free capacity scattered one-VM-wide
// across many racks so no multi-VM stack fits anywhere.  These metrics
// quantify that gap between *total* free capacity and *usable* free
// capacity, measured against a caller-supplied reference VM shape (default:
// the medium/homogeneous class of sim::workloads, 2 vcpus / 2 GB).
//
// Everything is derived from state the FeasibilityIndex already maintains
// (per-host free vectors, per-host free uplink, per-subtree feasible-host
// counts), so one computation is O(hosts) with no occupancy locking beyond
// the caller's — cheap enough to sample every few simulated seconds from
// the lifecycle loop.
//
// The headline number, `frag_index` in [0, 1], is the larger of the
// unusable-free fractions of CPU and memory: 0 means every free byte could
// be packed with reference VMs, 1 means free capacity exists but none of it
// can host even one.
#pragma once

#include <cstdint>

#include "datacenter/occupancy.h"
#include "topology/resources.h"

namespace ostro::dc {

struct FragmentationStats {
  // ---- fill ----
  double used_cpu_fraction = 0.0;  ///< total used / total capacity
  double used_mem_fraction = 0.0;
  double active_host_fraction = 0.0;  ///< non-idle hosts / all hosts

  // ---- feasibility ----
  /// Hosts with strictly positive free capacity in every dimension
  /// (FeasibilityIndex root aggregate) over all hosts.
  double feasible_host_fraction = 0.0;

  // ---- free-capacity usability vs the reference VM ----
  double total_free_cpu = 0.0;   ///< sum of free vcpus over all hosts
  double total_free_mem = 0.0;   ///< sum of free mem_gb over all hosts
  /// Free capacity reachable by reference VMs: per host, the whole units of
  /// the reference shape that fit (min over its positive dimensions) times
  /// the reference demand, summed.
  double usable_free_cpu = 0.0;
  double usable_free_mem = 0.0;
  /// (total - usable) / total free per dimension; 0 when nothing is free.
  double unusable_free_cpu_fraction = 0.0;
  double unusable_free_mem_fraction = 0.0;
  /// max of the two unusable fractions — the headline fragmentation index.
  double frag_index = 0.0;

  // ---- stranded bandwidth ----
  /// Fraction of free host-uplink bandwidth sitting on hosts that cannot
  /// fit one reference VM (bandwidth no new placement can reach).
  double stranded_uplink_fraction = 0.0;

  // ---- dispersion / largest placeable stack ----
  /// Coefficient of variation (stddev / mean) of per-rack free CPU; rises
  /// as churn concentrates free capacity unevenly.  0 when mean is 0.
  double rack_free_cpu_cv = 0.0;
  /// Reference VMs that fit in the single best rack — an upper-bound
  /// estimate of the largest stack placeable without leaving one rack.
  std::uint32_t largest_placeable_stack_vms = 0;
  /// Reference VMs that fit data-center-wide (sum of per-host units).
  std::uint32_t total_placeable_vms = 0;
};

/// Computes the stats in one O(hosts) pass over the feasibility index.
/// `reference_vm` must be non-negative with at least one positive dimension;
/// zero dimensions (e.g. disk for the paper's VM classes) are ignored when
/// counting units.
[[nodiscard]] FragmentationStats compute_fragmentation(
    const Occupancy& occupancy,
    const topo::Resources& reference_vm = {2.0, 2.0, 0.0});

/// compute_fragmentation + one observation per frag.* summary (frag.index,
/// frag.unusable_free_cpu_fraction, frag.unusable_free_mem_fraction,
/// frag.stranded_uplink_fraction, frag.feasible_host_fraction,
/// frag.largest_placeable_stack_vms, frag.rack_free_cpu_cv).
FragmentationStats observe_fragmentation(
    const Occupancy& occupancy,
    const topo::Resources& reference_vm = {2.0, 2.0, 0.0});

}  // namespace ostro::dc
