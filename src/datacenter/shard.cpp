#include "datacenter/shard.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>
#include <string>

namespace ostro::dc {

namespace {

/// Hosts per pod / per site, from the static structure.
std::vector<std::size_t> pod_host_counts(const DataCenter& dc) {
  std::vector<std::size_t> counts(dc.pods().size(), 0);
  for (const Rack& rack : dc.racks()) {
    counts[rack.pod] += rack.hosts.size();
  }
  return counts;
}

}  // namespace

ShardLayout::ShardLayout(const DataCenter& global, std::uint32_t shard_count)
    : global_(&global) {
  const std::size_t num_sites = global.sites().size();
  const std::size_t num_pods = global.pods().size();
  if (shard_count == 0) {
    throw std::invalid_argument("ShardLayout: shard_count must be >= 1");
  }
  if (shard_count > num_pods) {
    throw std::invalid_argument(
        "ShardLayout: shard_count " + std::to_string(shard_count) +
        " exceeds the " + std::to_string(num_pods) + " pod(s)");
  }

  const std::vector<std::size_t> pod_hosts = pod_host_counts(global);
  std::vector<std::size_t> site_hosts(num_sites, 0);
  std::vector<std::size_t> site_pods(num_sites, 0);
  for (const Pod& pod : global.pods()) {
    site_hosts[pod.datacenter] += pod_hosts[pod.id];
    site_pods[pod.datacenter] += 1;
  }

  shard_of_pod_.assign(num_pods, 0);
  site_split_.assign(num_sites, false);

  if (shard_count <= num_sites) {
    // Whole-site bins: sites in id order, each to the smallest bin (by host
    // count, ties to the lowest bin id).  With shard_count == sites every
    // site lands in its own bin.
    std::vector<std::size_t> bin_hosts(shard_count, 0);
    for (const Site& site : global.sites()) {
      std::uint32_t best = 0;
      for (std::uint32_t b = 1; b < shard_count; ++b) {
        if (bin_hosts[b] < bin_hosts[best]) best = b;
      }
      for (const std::uint32_t pod : site.pods) {
        shard_of_pod_[pod] = best;
      }
      bin_hosts[best] += site_hosts[site.id];
    }
  } else {
    // Every site gets at least one shard; the extras go to the site with
    // the most hosts per already-assigned shard, capped by its pod count
    // (a pod never splits).  Then each split site spreads its pods
    // greedily over its consecutive shard-id group.
    std::vector<std::uint32_t> shares(num_sites, 1);
    for (std::uint32_t extra = shard_count - static_cast<std::uint32_t>(num_sites);
         extra > 0; --extra) {
      std::uint32_t best = kLedgerOwned;
      double best_score = -1.0;
      for (std::uint32_t s = 0; s < num_sites; ++s) {
        if (shares[s] >= site_pods[s]) continue;  // cannot split further
        const double score = static_cast<double>(site_hosts[s]) /
                             static_cast<double>(shares[s]);
        if (score > best_score) {
          best_score = score;
          best = s;
        }
      }
      // Always found: sum(shares) < shard_count <= total pods.
      ++shares[best];
    }
    std::uint32_t next_shard = 0;
    for (const Site& site : global.sites()) {
      const std::uint32_t groups = shares[site.id];
      if (groups > 1) site_split_[site.id] = true;
      std::vector<std::size_t> group_hosts(groups, 0);
      for (const std::uint32_t pod : site.pods) {
        std::uint32_t best = 0;
        for (std::uint32_t g = 1; g < groups; ++g) {
          if (group_hosts[g] < group_hosts[best]) best = g;
        }
        shard_of_pod_[pod] = next_shard + best;
        group_hosts[best] += pod_hosts[pod];
      }
      next_shard += groups;
    }
  }

  shard_of_host_.assign(global.host_count(), 0);
  for (const Host& host : global.hosts()) {
    shard_of_host_[host.id] = shard_of_pod_[host.pod];
  }

  // Rebuild each shard as its own DataCenter, in GLOBAL id order on every
  // level, so local ids are the order-preserving compaction of the global
  // ids (the identity when shard_count == 1).
  const std::array<double, 5> latencies{
      global.scope_latency_us(Scope::kSameHost),
      global.scope_latency_us(Scope::kSameRack),
      global.scope_latency_us(Scope::kSamePod),
      global.scope_latency_us(Scope::kSameSite),
      global.scope_latency_us(Scope::kCrossSite)};

  constexpr std::uint32_t kUnmapped = std::numeric_limits<std::uint32_t>::max();
  shards_.resize(shard_count);
  local_host_of_.assign(global.host_count(), kInvalidHost);
  link_owner_.assign(global.link_count(), kLedgerOwned);
  local_link_of_.assign(global.link_count(), 0);

  std::vector<std::uint32_t> local_site(num_sites);
  std::vector<std::uint32_t> local_pod(num_pods);
  std::vector<std::uint32_t> local_rack(global.racks().size());
  for (std::uint32_t k = 0; k < shard_count; ++k) {
    Shard& shard = shards_[k];
    DataCenterBuilder builder;
    builder.set_scope_latencies(latencies);
    std::fill(local_site.begin(), local_site.end(), kUnmapped);
    for (const Site& site : global.sites()) {
      bool in_shard = false;
      for (const std::uint32_t pod : site.pods) {
        if (shard_of_pod_[pod] == k) {
          in_shard = true;
          break;
        }
      }
      if (in_shard) {
        local_site[site.id] = builder.add_site(site.name, site.uplink_mbps);
      }
    }
    for (const Pod& pod : global.pods()) {
      if (shard_of_pod_[pod.id] != k) continue;
      local_pod[pod.id] =
          builder.add_pod(local_site[pod.datacenter], pod.name, pod.uplink_mbps);
    }
    for (const Rack& rack : global.racks()) {
      if (shard_of_pod_[rack.pod] != k) continue;
      local_rack[rack.id] =
          builder.add_rack(local_pod[rack.pod], rack.name, rack.uplink_mbps);
    }
    bool has_hosts = false;
    for (const Host& host : global.hosts()) {
      if (shard_of_host_[host.id] != k) continue;
      const HostId local = builder.add_host(local_rack[host.rack], host.name,
                                            host.capacity, host.uplink_mbps,
                                            host.tags);
      local_host_of_[host.id] = local;
      shard.local_to_global_host.push_back(host.id);
      has_hosts = true;
    }
    if (!has_hosts) {
      throw std::invalid_argument(
          "ShardLayout: shard " + std::to_string(k) +
          " is empty (host-less site or pod); use fewer shards");
    }
    shard.dc = builder.build();

    // Link mapping for this shard.  A split site appears in several shards;
    // each maps its local site uplink to the same global link, but the link
    // is ledger-owned (no shard's local paths ever traverse it).
    shard.local_to_global_link.assign(shard.dc.link_count(), 0);
    for (const HostId gh : shard.local_to_global_host) {
      const LinkId g = global.host_link(gh);
      const LinkId l = shard.dc.host_link(local_host_of_[gh]);
      link_owner_[g] = k;
      local_link_of_[g] = l;
      shard.local_to_global_link[l] = g;
    }
    for (const Rack& rack : global.racks()) {
      if (shard_of_pod_[rack.pod] != k) continue;
      const LinkId g = global.rack_link(rack.id);
      const LinkId l = shard.dc.rack_link(local_rack[rack.id]);
      link_owner_[g] = k;
      local_link_of_[g] = l;
      shard.local_to_global_link[l] = g;
    }
    for (const Pod& pod : global.pods()) {
      if (shard_of_pod_[pod.id] != k) continue;
      const LinkId g = global.pod_link(pod.id);
      const LinkId l = shard.dc.pod_link(local_pod[pod.id]);
      link_owner_[g] = k;
      local_link_of_[g] = l;
      shard.local_to_global_link[l] = g;
    }
    for (const Site& site : global.sites()) {
      if (local_site[site.id] == kUnmapped) continue;
      const LinkId g = global.site_link(site.id);
      const LinkId l = shard.dc.site_link(local_site[site.id]);
      shard.local_to_global_link[l] = g;
      if (!site_split_[site.id]) {
        link_owner_[g] = k;
        local_link_of_[g] = l;
      }
    }
  }

  for (std::uint32_t s = 0; s < num_sites; ++s) {
    if (site_split_[s]) {
      shared_links_.push_back(global.site_link(s));
    }
  }
}

void ShardLayout::overlay(Occupancy& global_occupancy, std::uint32_t shard,
                          const Occupancy& shard_occupancy) const {
  const Shard& sh = shards_.at(shard);
  if (&shard_occupancy.datacenter() != &sh.dc) {
    throw std::invalid_argument(
        "ShardLayout::overlay: occupancy does not belong to this shard");
  }
  if (&global_occupancy.datacenter() != global_) {
    throw std::invalid_argument(
        "ShardLayout::overlay: target is not the global datacenter");
  }
  for (HostId local = 0; local < sh.dc.host_count(); ++local) {
    const HostId g = sh.local_to_global_host[local];
    const topo::Resources used = shard_occupancy.used(local);
    if (!used.is_zero()) {
      global_occupancy.add_host_load(g, used);
    }
    // add_host_load marks hosts active; copy the shard's exact flag so
    // zero-load-but-active hosts (and inactive loaded hosts, which cannot
    // occur today) stitch faithfully.
    global_occupancy.set_active(g, shard_occupancy.is_active(local));
  }
  for (LinkId local = 0; local < sh.dc.link_count(); ++local) {
    const double used = shard_occupancy.link_used_mbps(local);
    if (used > 0.0) {
      global_occupancy.reserve_link(sh.local_to_global_link[local], used);
    }
  }
}

}  // namespace ostro::dc
