#include "datacenter/dc_io.h"

#include <unordered_map>

namespace ostro::dc {
namespace {

[[nodiscard]] const util::JsonArray& require_array(const util::Json& parent,
                                                   const std::string& key) {
  if (!parent.contains(key)) throw DcIoError("missing \"" + key + "\" array");
  try {
    return parent.at(key).as_array();
  } catch (const util::JsonError&) {
    throw DcIoError("\"" + key + "\" must be an array");
  }
}

}  // namespace

DataCenter datacenter_from_json(const util::Json& document) {
  if (!document.is_object()) {
    throw DcIoError("data-center document must be an object");
  }
  DataCenterBuilder builder;
  try {
    if (document.contains("scope_latencies_us")) {
      const auto& values = document.at("scope_latencies_us").as_array();
      if (values.size() != 5) {
        throw DcIoError("scope_latencies_us must list exactly 5 values");
      }
      std::array<double, 5> latencies{};
      for (std::size_t i = 0; i < 5; ++i) {
        latencies[i] = values[i].as_number();
      }
      builder.set_scope_latencies(latencies);
    }
    for (const auto& site_doc : require_array(document, "sites")) {
      const auto site = builder.add_site(
          site_doc.at("name").as_string(),
          site_doc.number_or("uplink_mbps", 0.0));
      for (const auto& pod_doc : require_array(site_doc, "pods")) {
        const auto pod = builder.add_pod(
            site, pod_doc.at("name").as_string(),
            pod_doc.number_or("uplink_mbps", 0.0));
        for (const auto& rack_doc : require_array(pod_doc, "racks")) {
          const auto rack = builder.add_rack(
              pod, rack_doc.at("name").as_string(),
              rack_doc.number_or("uplink_mbps", 0.0));
          for (const auto& host_doc : require_array(rack_doc, "hosts")) {
            std::vector<std::string> tags;
            if (host_doc.contains("tags")) {
              for (const auto& tag : host_doc.at("tags").as_array()) {
                tags.push_back(tag.as_string());
              }
            }
            builder.add_host(
                rack, host_doc.at("name").as_string(),
                {host_doc.at("vcpus").as_number(),
                 host_doc.at("mem_gb").as_number(),
                 host_doc.at("disk_gb").as_number()},
                host_doc.number_or("uplink_mbps", 0.0), std::move(tags));
          }
        }
      }
    }
    return builder.build();
  } catch (const util::JsonError& e) {
    throw DcIoError(std::string("malformed data-center document: ") +
                    e.what());
  } catch (const std::invalid_argument& e) {
    throw DcIoError(std::string("invalid data-center document: ") + e.what());
  }
}

DataCenter datacenter_from_text(const std::string& text) {
  try {
    return datacenter_from_json(util::Json::parse(text));
  } catch (const util::JsonError& e) {
    throw DcIoError(std::string("data center is not valid JSON: ") +
                    e.what());
  }
}

util::Json datacenter_to_json(const DataCenter& datacenter) {
  util::JsonObject document;
  util::JsonArray latencies;
  for (int s = 0; s <= static_cast<int>(Scope::kCrossSite); ++s) {
    latencies.emplace_back(
        datacenter.scope_latency_us(static_cast<Scope>(s)));
  }
  document["scope_latencies_us"] = util::Json(std::move(latencies));

  util::JsonArray sites;
  for (const auto& site : datacenter.sites()) {
    util::JsonObject site_doc;
    site_doc["name"] = site.name;
    site_doc["uplink_mbps"] = site.uplink_mbps;
    util::JsonArray pods;
    for (const auto pod_id : site.pods) {
      const auto& pod = datacenter.pods()[pod_id];
      util::JsonObject pod_doc;
      pod_doc["name"] = pod.name;
      pod_doc["uplink_mbps"] = pod.uplink_mbps;
      util::JsonArray racks;
      for (const auto rack_id : pod.racks) {
        const auto& rack = datacenter.racks()[rack_id];
        util::JsonObject rack_doc;
        rack_doc["name"] = rack.name;
        rack_doc["uplink_mbps"] = rack.uplink_mbps;
        util::JsonArray hosts;
        for (const auto host_id : rack.hosts) {
          const auto& host = datacenter.host(host_id);
          util::JsonObject host_doc;
          host_doc["name"] = host.name;
          host_doc["vcpus"] = host.capacity.vcpus;
          host_doc["mem_gb"] = host.capacity.mem_gb;
          host_doc["disk_gb"] = host.capacity.disk_gb;
          host_doc["uplink_mbps"] = host.uplink_mbps;
          if (!host.tags.empty()) {
            util::JsonArray tags;
            for (const auto& tag : host.tags) tags.emplace_back(tag);
            host_doc["tags"] = util::Json(std::move(tags));
          }
          hosts.emplace_back(std::move(host_doc));
        }
        rack_doc["hosts"] = util::Json(std::move(hosts));
        racks.emplace_back(std::move(rack_doc));
      }
      pod_doc["racks"] = util::Json(std::move(racks));
      pods.emplace_back(std::move(pod_doc));
    }
    site_doc["pods"] = util::Json(std::move(pods));
    sites.emplace_back(std::move(site_doc));
  }
  document["sites"] = util::Json(std::move(sites));
  return util::Json(std::move(document));
}

util::Json occupancy_to_json(const Occupancy& occupancy) {
  const DataCenter& datacenter = occupancy.datacenter();
  util::JsonObject hosts;
  for (const auto& host : datacenter.hosts()) {
    const topo::Resources used = occupancy.used(host.id);
    const bool active = occupancy.is_active(host.id);
    if (used.is_zero() && !active) continue;
    util::JsonObject host_doc;
    host_doc["vcpus"] = used.vcpus;
    host_doc["mem_gb"] = used.mem_gb;
    host_doc["disk_gb"] = used.disk_gb;
    host_doc["active"] = active;
    hosts[host.name] = util::Json(std::move(host_doc));
  }
  util::JsonObject links;
  for (LinkId link = 0; link < datacenter.link_count(); ++link) {
    const double used = occupancy.link_used_mbps(link);
    if (used > 0.0) links[datacenter.link_name(link)] = used;
  }
  util::JsonObject document;
  document["hosts"] = util::Json(std::move(hosts));
  document["links"] = util::Json(std::move(links));
  return util::Json(std::move(document));
}

Occupancy occupancy_from_json(const DataCenter& datacenter,
                              const util::Json& document) {
  Occupancy occupancy(datacenter);
  if (!document.is_object()) {
    throw DcIoError("occupancy document must be an object");
  }
  // Link names -> ids (built once; the name format is link_name()'s).
  std::unordered_map<std::string, LinkId> link_index;
  for (LinkId link = 0; link < datacenter.link_count(); ++link) {
    link_index[datacenter.link_name(link)] = link;
  }
  try {
    if (document.contains("hosts")) {
      for (const auto& [name, host_doc] : document.at("hosts").as_object()) {
        const auto host = datacenter.find_host(name);
        if (!host) throw DcIoError("occupancy names unknown host " + name);
        const topo::Resources used{host_doc.number_or("vcpus", 0.0),
                                   host_doc.number_or("mem_gb", 0.0),
                                   host_doc.number_or("disk_gb", 0.0)};
        if (!used.is_zero()) {
          occupancy.add_host_load(*host, used);
        }
        if (host_doc.contains("active") &&
            host_doc.at("active").as_bool()) {
          occupancy.mark_active(*host);
        }
      }
    }
    if (document.contains("links")) {
      for (const auto& [name, used] : document.at("links").as_object()) {
        const auto it = link_index.find(name);
        if (it == link_index.end()) {
          throw DcIoError("occupancy names unknown link " + name);
        }
        occupancy.reserve_link(it->second, used.as_number());
      }
    }
  } catch (const util::JsonError& e) {
    throw DcIoError(std::string("malformed occupancy document: ") + e.what());
  } catch (const std::invalid_argument& e) {
    throw DcIoError(std::string("invalid occupancy document: ") + e.what());
  }
  return occupancy;
}

Occupancy occupancy_from_text(const DataCenter& datacenter,
                              const std::string& text) {
  try {
    return occupancy_from_json(datacenter, util::Json::parse(text));
  } catch (const util::JsonError& e) {
    throw DcIoError(std::string("occupancy is not valid JSON: ") + e.what());
  }
}

}  // namespace ostro::dc
