// Mutable occupancy state of a DataCenter: per-host used resources, per-link
// reserved bandwidth, and the host active/idle flag the u_c objective term
// counts (Section II-B-1: hosts "that already contain existing nodes of this
// or other applications (i.e., they are not idle)").
//
// Occupancy is a plain value (copyable) so callers can snapshot/restore
// around tentative placements.  Tentative state is cheaper than a copy:
// search paths layer core/partial.h (PartialPlacement) on top of a const
// Occupancy base, and reservations stage through an OccupancyDelta overlay
// (datacenter/state_delta.h) that apply_delta() flushes in one batch.
#pragma once

#include <cstdint>
#include <vector>

#include "datacenter/datacenter.h"
#include "datacenter/feasibility_index.h"
#include "datacenter/prune_labels.h"
#include "topology/resources.h"

namespace ostro::dc {

class OccupancyDelta;

class Occupancy {
 public:
  /// All-idle occupancy for `dc`. The reference must outlive the Occupancy.
  explicit Occupancy(const DataCenter& dc);

  [[nodiscard]] const DataCenter& datacenter() const noexcept { return *dc_; }

  // ---- queries ----
  [[nodiscard]] topo::Resources used(HostId h) const;
  [[nodiscard]] topo::Resources available(HostId h) const;
  [[nodiscard]] double link_used_mbps(LinkId link) const;
  [[nodiscard]] double link_available_mbps(LinkId link) const;
  [[nodiscard]] bool is_active(HostId h) const;
  /// Number of hosts currently active (non-idle).
  [[nodiscard]] std::size_t active_host_count() const noexcept {
    return active_count_;
  }

  /// Monotonic mutation epoch: incremented by every state change (host
  /// loads, link reservations, active flags; apply_delta counts as one
  /// epoch per batch).  Two reads returning the same version bracket a
  /// window with no interleaved mutation, which is what the optimistic
  /// plan-against-a-snapshot / validate-and-commit protocol of
  /// core::PlacementService relies on to detect stale snapshots.  The
  /// version is bookkeeping, not state: copies inherit it, equality
  /// ignores it.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  // ---- mutations ----
  /// Consumes `load` on host `h` and marks it active.
  /// Throws std::invalid_argument when the host lacks capacity.
  void add_host_load(HostId h, const topo::Resources& load);
  /// Releases load previously added; throws when releasing more than used.
  void remove_host_load(HostId h, const topo::Resources& load);

  /// Reserves bandwidth on one link; throws when capacity would be exceeded.
  void reserve_link(LinkId link, double mbps);
  void release_link(LinkId link, double mbps);

  /// Marks a host active without adding load (e.g. pre-existing tenants that
  /// are modeled only as background load).
  void mark_active(HostId h);

  /// Force the active flag (used by transactional rollback to restore the
  /// exact pre-transaction state).  Clearing does not touch the host's load.
  void set_active(HostId h, bool active);

  /// Deactivates `h` iff it is active and carries zero tracked load, and
  /// returns whether it did.  This is the release-path counterpart of the
  /// sticky activation in add_host_load: departures and migrations call it
  /// per vacated host so the u_c objective (count of non-idle hosts) stops
  /// charging for hosts that emptied out.  Callers that model untracked
  /// background tenants via mark_active must NOT call this — zero tracked
  /// load does not mean idle for them.
  bool deactivate_if_idle(HostId h);

  /// Flushes a delta staged against *this* occupancy in one batch, replaying
  /// its op log in staging order with the exact arithmetic of the direct
  /// mutations (bit-identical result).  Throws std::logic_error when the
  /// delta was staged against another occupancy or the base state changed
  /// since staging; this occupancy is untouched in that case.  Defined in
  /// state_delta.cpp.
  void apply_delta(const OccupancyDelta& delta);

  /// Total bandwidth reserved across all links (the u_bw measure).
  [[nodiscard]] double total_reserved_mbps() const noexcept;

  /// Per-subtree feasibility aggregates (max free resources / uplink,
  /// feasible-host counts), kept in sync with every mutation above in
  /// O(tree depth).  Candidate generation prunes whole racks/pods/sites
  /// against these before any per-host constraint check.
  [[nodiscard]] const FeasibilityIndex& feasibility() const noexcept {
    return index_;
  }

  /// Precomputed pruning labels (separation-feasibility counters, host
  /// climb labels, tag bitmaps), refreshed next to the feasibility index on
  /// every host-load mutation.  Consumed by the admissible-bound tighteners
  /// and the candidate descent when SearchConfig::use_prune_labels is set.
  [[nodiscard]] const PruneLabels& labels() const noexcept { return labels_; }

  /// State equality: same datacenter, loads, reservations and active flags.
  /// The mutation version is deliberately excluded — two occupancies that
  /// reached the same state through different histories compare equal.
  friend bool operator==(const Occupancy& a, const Occupancy& b) noexcept {
    return a.dc_ == b.dc_ && a.host_used_ == b.host_used_ &&
           a.link_used_ == b.link_used_ && a.active_ == b.active_ &&
           a.active_count_ == b.active_count_ && a.index_ == b.index_ &&
           a.labels_ == b.labels_;
  }

 private:
  void check_host(HostId h) const;
  void check_link(LinkId link) const;
  /// Pushes host `h`'s current free resources into the index.
  void index_host(HostId h);
  /// Pushes the free bandwidth of `link` into the index when it is a
  /// host uplink (other links carry no per-host aggregate).
  void index_link(LinkId link);

  const DataCenter* dc_;
  std::vector<topo::Resources> host_used_;
  std::vector<double> link_used_;
  std::vector<bool> active_;
  std::size_t active_count_ = 0;
  std::uint64_t version_ = 0;
  FeasibilityIndex index_;
  PruneLabels labels_;
};

}  // namespace ostro::dc
