// Resource vectors shared by application topologies (requirements) and the
// data-center model (capacities).
//
// The paper's capacity constraints (Section II-B-2) cover CPU, memory and
// disk per node plus network bandwidth per edge; bandwidth is kept separate
// because it is consumed on links, not on hosts.
#pragma once

#include <stdexcept>
#include <string>

namespace ostro::topo {

/// CPU / memory / disk triple.  Units: vCPUs (fractional allowed for
/// best-effort shares), GiB, GiB.
struct Resources {
  double vcpus = 0.0;
  double mem_gb = 0.0;
  double disk_gb = 0.0;

  [[nodiscard]] constexpr Resources operator+(const Resources& o) const noexcept {
    return {vcpus + o.vcpus, mem_gb + o.mem_gb, disk_gb + o.disk_gb};
  }
  [[nodiscard]] constexpr Resources operator-(const Resources& o) const noexcept {
    return {vcpus - o.vcpus, mem_gb - o.mem_gb, disk_gb - o.disk_gb};
  }
  Resources& operator+=(const Resources& o) noexcept {
    vcpus += o.vcpus;
    mem_gb += o.mem_gb;
    disk_gb += o.disk_gb;
    return *this;
  }
  Resources& operator-=(const Resources& o) noexcept {
    vcpus -= o.vcpus;
    mem_gb -= o.mem_gb;
    disk_gb -= o.disk_gb;
    return *this;
  }

  /// True when every component of this requirement fits in `capacity`.
  /// A small epsilon absorbs floating-point accumulation error.
  [[nodiscard]] constexpr bool fits_within(const Resources& capacity) const noexcept {
    constexpr double kEps = 1e-9;
    return vcpus <= capacity.vcpus + kEps && mem_gb <= capacity.mem_gb + kEps &&
           disk_gb <= capacity.disk_gb + kEps;
  }

  [[nodiscard]] constexpr bool is_nonnegative() const noexcept {
    return vcpus >= 0.0 && mem_gb >= 0.0 && disk_gb >= 0.0;
  }

  [[nodiscard]] constexpr bool is_zero() const noexcept {
    return vcpus == 0.0 && mem_gb == 0.0 && disk_gb == 0.0;
  }

  friend constexpr bool operator==(const Resources&, const Resources&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// Throws std::invalid_argument unless all components are non-negative.
void require_nonnegative(const Resources& r, const std::string& what);

}  // namespace ostro::topo
