// Application topology T_a = <V, E> (Section II-A-1 of the paper).
//
// Nodes are VMs or disk volumes with resource requirements; edges are
// network pipes with a bandwidth requirement; diversity zones express
// anti-affinity at a chosen level of the data-center hierarchy
// (Section II-B-2).  AppTopology is an immutable value built through
// TopologyBuilder, which validates all invariants.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/resources.h"

namespace ostro::topo {

/// Index into AppTopology::nodes().
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class NodeKind : std::uint8_t { kVm, kVolume };

[[nodiscard]] const char* to_string(NodeKind kind) noexcept;

/// Separation level of a diversity zone: members must be placed on pairwise
/// different <level>s.  Ordered weakest (host) to strongest (datacenter).
enum class DiversityLevel : std::uint8_t {
  kHost = 0,
  kRack = 1,
  kPod = 2,
  kDatacenter = 3,
};

[[nodiscard]] const char* to_string(DiversityLevel level) noexcept;

/// One VM or volume of the application.
struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  NodeKind kind = NodeKind::kVm;
  Resources requirements;
  /// Hardware-affinity tags: the node may only land on hosts that carry
  /// every one of these tags (e.g. "ssd", "sriov", "gpu").  Sorted.
  std::vector<std::string> required_tags;
};

/// Undirected network pipe between two nodes (VM-VM or VM-volume).
struct Edge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double bandwidth_mbps = 0.0;
  /// Maximum one-way latency the pipe tolerates, in microseconds; 0 means
  /// unconstrained.  Latency requirements on communication links are the
  /// first item of the paper's future work (Section VI); the data center
  /// model prices each separation scope with a latency (see
  /// dc::DataCenter::scope_latency_us) and the placement engine rejects
  /// hosts whose separation would exceed this budget.
  double max_latency_us = 0.0;

  /// The endpoint that is not `node`; `node` must be an endpoint.
  [[nodiscard]] NodeId other(NodeId node) const;
};

/// Anti-affinity group: members must land on distinct units at `level`.
struct DiversityZone {
  std::string name;
  DiversityLevel level = DiversityLevel::kHost;
  std::vector<NodeId> members;
};

/// Affinity group: members must land on the SAME unit at `level` (all on
/// one host, in one rack, ...).  The paper's introduction lists "specific
/// hardware or software affinities for VMs and disk volumes" among the
/// application-topology properties.
struct AffinityGroup {
  std::string name;
  DiversityLevel level = DiversityLevel::kHost;
  std::vector<NodeId> members;
};

/// Neighbor view entry: adjacent node plus connecting pipe bandwidth.
struct Neighbor {
  NodeId node = kInvalidNode;
  double bandwidth_mbps = 0.0;
  std::uint32_t edge_index = 0;
};

class AppTopology {
 public:
  AppTopology() = default;

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] const std::vector<DiversityZone>& zones() const noexcept {
    return zones_;
  }
  [[nodiscard]] const std::vector<AffinityGroup>& affinities() const noexcept {
    return affinities_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  /// Throws std::out_of_range when no node has `name`.
  [[nodiscard]] NodeId node_id(const std::string& name) const;
  [[nodiscard]] std::optional<NodeId> find_node(const std::string& name) const noexcept;

  /// Pipes incident to `id`.
  [[nodiscard]] std::span<const Neighbor> neighbors(NodeId id) const;

  /// Indices into zones() that contain `id`.
  [[nodiscard]] std::span<const std::uint32_t> zones_of(NodeId id) const;

  /// Indices into affinities() that contain `id`.
  [[nodiscard]] std::span<const std::uint32_t> affinities_of(NodeId id) const;

  /// Sum of all pipe bandwidths (Mbps); the basis of the û_bw normalizer.
  [[nodiscard]] double total_edge_bandwidth() const noexcept;
  /// Sum of node requirements.
  [[nodiscard]] Resources total_requirements() const noexcept;
  /// Sum of pipe bandwidth incident to `id` (Mbps).
  [[nodiscard]] double incident_bandwidth(NodeId id) const;

  /// True when the two nodes share a zone whose level forces them onto
  /// different hosts (or stronger) — i.e. they can never be co-located.
  [[nodiscard]] bool must_separate(NodeId a, NodeId b) const;
  /// Strongest separation level any shared zone forces between a and b, or
  /// nullopt when none does.
  [[nodiscard]] std::optional<DiversityLevel> required_separation(NodeId a,
                                                                  NodeId b) const;

 private:
  friend class TopologyBuilder;

  void build_indexes();

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<DiversityZone> zones_;
  std::vector<AffinityGroup> affinities_;

  // Derived indexes (built once by TopologyBuilder::build).
  std::unordered_map<std::string, NodeId> name_index_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<std::vector<std::uint32_t>> node_zones_;
  std::vector<std::vector<std::uint32_t>> node_affinities_;
};

/// Fluent construction with full validation at build().
///
///   auto topo = TopologyBuilder()
///       .add_vm("web0", {2, 2, 0})
///       .add_volume("data0", 120)
///       .connect("web0", "data0", 100)
///       .add_zone("replicas", DiversityLevel::kRack, {"web0"})
///       .build();
class TopologyBuilder {
 public:
  /// Adds a VM node; returns its id. Name must be unique and non-empty.
  NodeId add_vm(const std::string& name, const Resources& requirements);
  /// Adds a volume node of `size_gb` GiB.
  NodeId add_volume(const std::string& name, double size_gb);

  /// Adds an undirected pipe; both by-name and by-id forms.
  /// `max_latency_us` = 0 leaves the pipe latency-unconstrained.
  TopologyBuilder& connect(const std::string& a, const std::string& b,
                           double bandwidth_mbps, double max_latency_us = 0.0);
  TopologyBuilder& connect(NodeId a, NodeId b, double bandwidth_mbps,
                           double max_latency_us = 0.0);

  /// Declares a diversity zone over named or id'd members.
  TopologyBuilder& add_zone(const std::string& name, DiversityLevel level,
                            const std::vector<std::string>& members);
  TopologyBuilder& add_zone(const std::string& name, DiversityLevel level,
                            std::vector<NodeId> members);

  /// Declares an affinity group: members co-located at `level`.
  TopologyBuilder& add_affinity(const std::string& name, DiversityLevel level,
                                const std::vector<std::string>& members);
  TopologyBuilder& add_affinity(const std::string& name, DiversityLevel level,
                                std::vector<NodeId> members);

  /// Requires `node` to be placed on hosts carrying all of `tags`.
  TopologyBuilder& require_tags(const std::string& node,
                                std::vector<std::string> tags);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return topology_.nodes_.size();
  }

  /// Validates all invariants and returns the finished topology:
  /// unique names, valid endpoints, no self-pipes, positive bandwidth,
  /// non-negative requirements, zones with >= 2 valid distinct members.
  /// The builder is left empty.
  [[nodiscard]] AppTopology build();

 private:
  NodeId add_node(const std::string& name, NodeKind kind,
                  const Resources& requirements);
  [[nodiscard]] NodeId resolve(const std::string& name) const;

  AppTopology topology_;
  std::unordered_map<std::string, NodeId> names_;
};

}  // namespace ostro::topo
