#include "topology/app_topology.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ostro::topo {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kVm: return "vm";
    case NodeKind::kVolume: return "volume";
  }
  return "?";
}

const char* to_string(DiversityLevel level) noexcept {
  switch (level) {
    case DiversityLevel::kHost: return "host";
    case DiversityLevel::kRack: return "rack";
    case DiversityLevel::kPod: return "pod";
    case DiversityLevel::kDatacenter: return "datacenter";
  }
  return "?";
}

NodeId Edge::other(NodeId node) const {
  if (node == a) return b;
  if (node == b) return a;
  throw std::invalid_argument("Edge::other: node is not an endpoint");
}

const Node& AppTopology::node(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("AppTopology::node: bad id");
  }
  return nodes_[id];
}

NodeId AppTopology::node_id(const std::string& name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    throw std::out_of_range("AppTopology::node_id: unknown node " + name);
  }
  return it->second;
}

std::optional<NodeId> AppTopology::find_node(const std::string& name) const noexcept {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

std::span<const Neighbor> AppTopology::neighbors(NodeId id) const {
  if (id >= adjacency_.size()) {
    throw std::out_of_range("AppTopology::neighbors: bad id");
  }
  return adjacency_[id];
}

std::span<const std::uint32_t> AppTopology::zones_of(NodeId id) const {
  if (id >= node_zones_.size()) {
    throw std::out_of_range("AppTopology::zones_of: bad id");
  }
  return node_zones_[id];
}

std::span<const std::uint32_t> AppTopology::affinities_of(NodeId id) const {
  if (id >= node_affinities_.size()) {
    throw std::out_of_range("AppTopology::affinities_of: bad id");
  }
  return node_affinities_[id];
}

double AppTopology::total_edge_bandwidth() const noexcept {
  double total = 0.0;
  for (const auto& edge : edges_) total += edge.bandwidth_mbps;
  return total;
}

Resources AppTopology::total_requirements() const noexcept {
  Resources total;
  for (const auto& n : nodes_) total += n.requirements;
  return total;
}

double AppTopology::incident_bandwidth(NodeId id) const {
  double total = 0.0;
  for (const auto& nb : neighbors(id)) total += nb.bandwidth_mbps;
  return total;
}

std::optional<DiversityLevel> AppTopology::required_separation(NodeId a,
                                                               NodeId b) const {
  if (a == b) return std::nullopt;
  std::optional<DiversityLevel> strongest;
  for (const auto zone_index : zones_of(a)) {
    const auto& zone = zones_[zone_index];
    const bool b_member =
        std::find(zone.members.begin(), zone.members.end(), b) !=
        zone.members.end();
    if (!b_member) continue;
    if (!strongest || zone.level > *strongest) strongest = zone.level;
  }
  return strongest;
}

bool AppTopology::must_separate(NodeId a, NodeId b) const {
  return required_separation(a, b).has_value();
}

void AppTopology::build_indexes() {
  name_index_.clear();
  for (const auto& n : nodes_) name_index_[n.name] = n.id;

  adjacency_.assign(nodes_.size(), {});
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    const Edge& edge = edges_[e];
    adjacency_[edge.a].push_back({edge.b, edge.bandwidth_mbps, e});
    adjacency_[edge.b].push_back({edge.a, edge.bandwidth_mbps, e});
  }

  node_zones_.assign(nodes_.size(), {});
  for (std::uint32_t z = 0; z < zones_.size(); ++z) {
    for (const NodeId member : zones_[z].members) {
      node_zones_[member].push_back(z);
    }
  }

  node_affinities_.assign(nodes_.size(), {});
  for (std::uint32_t g = 0; g < affinities_.size(); ++g) {
    for (const NodeId member : affinities_[g].members) {
      node_affinities_[member].push_back(g);
    }
  }
}

NodeId TopologyBuilder::add_node(const std::string& name, NodeKind kind,
                                 const Resources& requirements) {
  if (name.empty()) {
    throw std::invalid_argument("TopologyBuilder: empty node name");
  }
  if (names_.count(name) != 0) {
    throw std::invalid_argument("TopologyBuilder: duplicate node name " + name);
  }
  require_nonnegative(requirements, "node " + name);
  const auto id = static_cast<NodeId>(topology_.nodes_.size());
  topology_.nodes_.push_back(Node{id, name, kind, requirements, {}});
  names_[name] = id;
  return id;
}

NodeId TopologyBuilder::add_vm(const std::string& name,
                               const Resources& requirements) {
  return add_node(name, NodeKind::kVm, requirements);
}

NodeId TopologyBuilder::add_volume(const std::string& name, double size_gb) {
  if (size_gb <= 0.0) {
    throw std::invalid_argument("TopologyBuilder: volume " + name +
                                " must have positive size");
  }
  return add_node(name, NodeKind::kVolume, Resources{0.0, 0.0, size_gb});
}

NodeId TopologyBuilder::resolve(const std::string& name) const {
  const auto it = names_.find(name);
  if (it == names_.end()) {
    throw std::invalid_argument("TopologyBuilder: unknown node " + name);
  }
  return it->second;
}

TopologyBuilder& TopologyBuilder::connect(const std::string& a,
                                          const std::string& b,
                                          double bandwidth_mbps,
                                          double max_latency_us) {
  return connect(resolve(a), resolve(b), bandwidth_mbps, max_latency_us);
}

TopologyBuilder& TopologyBuilder::connect(NodeId a, NodeId b,
                                          double bandwidth_mbps,
                                          double max_latency_us) {
  const auto count = topology_.nodes_.size();
  if (a >= count || b >= count) {
    throw std::invalid_argument("TopologyBuilder::connect: bad node id");
  }
  if (a == b) {
    throw std::invalid_argument("TopologyBuilder::connect: self-pipe on " +
                                topology_.nodes_[a].name);
  }
  if (bandwidth_mbps <= 0.0) {
    throw std::invalid_argument(
        "TopologyBuilder::connect: bandwidth must be positive");
  }
  if (topology_.nodes_[a].kind == NodeKind::kVolume &&
      topology_.nodes_[b].kind == NodeKind::kVolume) {
    throw std::invalid_argument(
        "TopologyBuilder::connect: volume-to-volume pipes are not allowed");
  }
  if (max_latency_us < 0.0) {
    throw std::invalid_argument(
        "TopologyBuilder::connect: negative latency budget");
  }
  topology_.edges_.push_back(Edge{a, b, bandwidth_mbps, max_latency_us});
  return *this;
}

TopologyBuilder& TopologyBuilder::add_zone(
    const std::string& name, DiversityLevel level,
    const std::vector<std::string>& members) {
  std::vector<NodeId> ids;
  ids.reserve(members.size());
  for (const auto& member : members) ids.push_back(resolve(member));
  return add_zone(name, level, std::move(ids));
}

TopologyBuilder& TopologyBuilder::add_zone(const std::string& name,
                                           DiversityLevel level,
                                           std::vector<NodeId> members) {
  if (name.empty()) {
    throw std::invalid_argument("TopologyBuilder: empty zone name");
  }
  if (members.size() < 2) {
    throw std::invalid_argument("TopologyBuilder: zone " + name +
                                " needs at least 2 members");
  }
  std::unordered_set<NodeId> seen;
  for (const NodeId member : members) {
    if (member >= topology_.nodes_.size()) {
      throw std::invalid_argument("TopologyBuilder: zone " + name +
                                  " has invalid member id");
    }
    if (!seen.insert(member).second) {
      throw std::invalid_argument("TopologyBuilder: zone " + name +
                                  " has duplicate member " +
                                  topology_.nodes_[member].name);
    }
  }
  topology_.zones_.push_back(DiversityZone{name, level, std::move(members)});
  return *this;
}

TopologyBuilder& TopologyBuilder::add_affinity(
    const std::string& name, DiversityLevel level,
    const std::vector<std::string>& members) {
  std::vector<NodeId> ids;
  ids.reserve(members.size());
  for (const auto& member : members) ids.push_back(resolve(member));
  return add_affinity(name, level, std::move(ids));
}

TopologyBuilder& TopologyBuilder::add_affinity(const std::string& name,
                                               DiversityLevel level,
                                               std::vector<NodeId> members) {
  if (name.empty()) {
    throw std::invalid_argument("TopologyBuilder: empty affinity name");
  }
  if (members.size() < 2) {
    throw std::invalid_argument("TopologyBuilder: affinity " + name +
                                " needs at least 2 members");
  }
  std::unordered_set<NodeId> seen;
  for (const NodeId member : members) {
    if (member >= topology_.nodes_.size()) {
      throw std::invalid_argument("TopologyBuilder: affinity " + name +
                                  " has invalid member id");
    }
    if (!seen.insert(member).second) {
      throw std::invalid_argument("TopologyBuilder: affinity " + name +
                                  " has duplicate member " +
                                  topology_.nodes_[member].name);
    }
  }
  topology_.affinities_.push_back(AffinityGroup{name, level,
                                                std::move(members)});
  return *this;
}

TopologyBuilder& TopologyBuilder::require_tags(const std::string& node,
                                               std::vector<std::string> tags) {
  const NodeId id = resolve(node);
  for (const auto& tag : tags) {
    if (tag.empty()) {
      throw std::invalid_argument("TopologyBuilder: empty tag on " + node);
    }
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  topology_.nodes_[id].required_tags = std::move(tags);
  return *this;
}

AppTopology TopologyBuilder::build() {
  if (topology_.nodes_.empty()) {
    throw std::invalid_argument("TopologyBuilder::build: no nodes");
  }
  AppTopology out = std::move(topology_);
  topology_ = AppTopology{};
  names_.clear();
  out.build_indexes();
  return out;
}

}  // namespace ostro::topo
