#include "topology/resources.h"

#include "util/string_util.h"

namespace ostro::topo {

std::string Resources::to_string() const {
  return util::format("{vcpus=%g, mem=%gGiB, disk=%gGiB}", vcpus, mem_gb,
                      disk_gb);
}

void require_nonnegative(const Resources& r, const std::string& what) {
  if (!r.is_nonnegative()) {
    throw std::invalid_argument(what + ": negative resource " + r.to_string());
  }
}

}  // namespace ostro::topo
