// Quickstart: the smallest end-to-end use of the Ostro public API.
//
//   1. describe a data center (2 racks x 4 hosts),
//   2. describe an application topology (3-tier web app with a volume,
//      QoS pipes and an anti-affinity zone),
//   3. ask the scheduler for a holistic placement,
//   4. inspect and commit the result.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/scheduler.h"
#include "core/verify.h"
#include "datacenter/datacenter.h"
#include "topology/app_topology.h"

int main() {
  using namespace ostro;

  // --- 1. The physical side: 2 racks of 4 hosts -------------------------
  dc::DataCenterBuilder dc_builder;
  const auto site = dc_builder.add_site("dc-east", 100'000.0);
  const auto pod = dc_builder.add_pod(site, "pod-1", 100'000.0);
  for (int r = 0; r < 2; ++r) {
    const auto rack = dc_builder.add_rack(pod, "rack-" + std::to_string(r),
                                          40'000.0);
    for (int h = 0; h < 4; ++h) {
      dc_builder.add_host(rack,
                          "host-" + std::to_string(r) + "-" +
                              std::to_string(h),
                          {16.0, 64.0, 2000.0},  // 16 cores, 64 GB, 2 TB
                          10'000.0);             // 10 Gbps uplink
    }
  }
  const dc::DataCenter datacenter = dc_builder.build();

  // --- 2. The application topology (Section II of the paper) ------------
  topo::TopologyBuilder app_builder;
  app_builder.add_vm("lb", {2.0, 4.0, 0.0});
  app_builder.add_vm("web0", {4.0, 8.0, 0.0});
  app_builder.add_vm("web1", {4.0, 8.0, 0.0});
  app_builder.add_vm("db", {8.0, 32.0, 0.0});
  app_builder.add_volume("db-data", 500.0);
  app_builder.connect("lb", "web0", 200.0);   // Mbps pipes
  app_builder.connect("lb", "web1", 200.0);
  app_builder.connect("web0", "db", 100.0);
  app_builder.connect("web1", "db", 100.0);
  app_builder.connect("db", "db-data", 400.0);
  // The two web servers must not share a host (anti-affinity).
  app_builder.add_zone("web-replicas", topo::DiversityLevel::kHost,
                       std::vector<std::string>{"web0", "web1"});
  const topo::AppTopology app = app_builder.build();

  // --- 3. Place it -------------------------------------------------------
  core::OstroScheduler scheduler(datacenter);
  const core::Placement placement = scheduler.plan(app, core::Algorithm::kEg);
  if (!placement.feasible) {
    std::cerr << "no feasible placement: " << placement.failure_reason
              << "\n";
    return 1;
  }

  // --- 4. Inspect and commit ---------------------------------------------
  std::cout << "placement (utility " << placement.utility << "):\n";
  for (const auto& node : app.nodes()) {
    std::cout << "  " << node.name << " -> "
              << datacenter.host(placement.assignment[node.id]).name << "\n";
  }
  std::cout << "reserved bandwidth: " << placement.reserved_bandwidth_mbps
            << " Mbps across physical links\n"
            << "newly activated hosts: " << placement.new_active_hosts
            << "\n";

  const auto violations =
      core::verify_placement(scheduler.occupancy(), app,
                             placement.assignment);
  std::cout << "independent verification: "
            << (violations.empty() ? "OK" : violations.front()) << "\n";

  scheduler.commit(app, placement);
  std::cout << "committed; data center now has "
            << scheduler.occupancy().active_host_count()
            << " active hosts\n";
  return 0;
}
