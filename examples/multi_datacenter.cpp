// Multi-data-center placement (the wide-area direction of the paper's
// conclusion): a geo-replicated application whose database replicas must be
// spread across three sites, while each site-local slice stays latency-
// tight.  Demonstrates datacenter-level diversity zones, rack-level
// affinity groups and pipe latency budgets working together, plus the
// utilization report.
//
// Build & run:  ./build/examples/multi_datacenter
#include <iostream>

#include "core/scheduler.h"
#include "core/verify.h"
#include "datacenter/report.h"
#include "sim/clusters.h"

int main() {
  using namespace ostro;

  const dc::DataCenter datacenter = sim::make_wan(/*sites=*/3);
  std::cout << "WAN: " << datacenter.sites().size() << " sites, "
            << datacenter.host_count() << " hosts total\n\n";

  // Geo-replicated service: three site slices, one DB replica each; each
  // slice's frontend and replica stay within one rack (affinity + tight
  // latency), replicas are forced onto three different sites, and the
  // cross-site replication pipes tolerate WAN latency.
  topo::TopologyBuilder app;
  std::vector<std::string> replicas;
  for (int s = 0; s < 3; ++s) {
    const std::string fe = "fe" + std::to_string(s);
    const std::string db = "db" + std::to_string(s);
    const std::string vol = "vol" + std::to_string(s);
    app.add_vm(fe, {4.0, 8.0, 0.0});
    app.add_vm(db, {8.0, 16.0, 0.0});
    app.add_volume(vol, 200.0);
    app.connect(fe, db, 200.0, /*max_latency_us=*/30.0);   // intra-rack
    app.connect(db, vol, 400.0, /*max_latency_us=*/30.0);
    app.add_affinity("slice" + std::to_string(s),
                     topo::DiversityLevel::kRack,
                     std::vector<std::string>{fe, db, vol});
    replicas.push_back(db);
  }
  // Replication ring between the three DBs; WAN latency tolerated.
  app.connect("db0", "db1", 100.0, 50'000.0);
  app.connect("db1", "db2", 100.0, 50'000.0);
  app.connect("db2", "db0", 100.0, 50'000.0);
  app.add_zone("geo-replicas", topo::DiversityLevel::kDatacenter, replicas);
  const topo::AppTopology topology = app.build();

  core::OstroScheduler scheduler(datacenter);
  const core::Placement placement =
      scheduler.plan(topology, core::Algorithm::kEg);
  if (!placement.feasible) {
    std::cerr << "placement failed: " << placement.failure_reason << "\n";
    return 1;
  }
  // Verify against the pre-commit occupancy, then commit.
  const auto violations = core::verify_placement(
      scheduler.occupancy(), topology, placement.assignment);
  scheduler.commit(topology, placement);

  std::cout << "placement:\n";
  for (const auto& node : topology.nodes()) {
    const auto& host = datacenter.host(placement.assignment[node.id]);
    std::cout << "  " << node.name << " -> " << host.name << " (site "
              << host.datacenter << ", rack " << host.rack << ")\n";
  }
  std::cout << "\nreserved bandwidth: " << placement.reserved_bandwidth_mbps
            << " Mbps (cross-site replication pipes traverse 8 links each)\n";
  std::cout << "verification: " << (violations.empty() ? "OK" : "FAILED")
            << "\n\n";

  const auto report = dc::utilization_report(scheduler.occupancy());
  std::cout << report.to_string();
  return 0;
}
