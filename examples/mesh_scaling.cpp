// Scalability demo on the mesh-communication workload of Figure 2 (right):
// places meshes of growing size on the paper's 2400-host data center and
// prints how the greedy baselines and the deadline-bounded search compare
// as the topology grows — a command-line miniature of Figures 10/11.
//
// Build & run:  ./build/examples/mesh_scaling [max_zones]
#include <iostream>

#include "core/scheduler.h"
#include "sim/clusters.h"
#include "sim/workloads.h"

int main(int argc, char** argv) {
  using namespace ostro;
  const int max_zones = argc > 1 ? std::atoi(argv[1]) : 20;

  const dc::DataCenter datacenter = sim::make_sim_datacenter();
  std::cout << "data center: " << datacenter.host_count() << " hosts in "
            << datacenter.racks().size() << " racks\n\n";

  for (int zones = 5; zones <= max_zones; zones += 5) {
    std::cout << "mesh with " << zones << " diversity zones ("
              << zones * 5 << " VMs):\n";
    for (const auto algorithm :
         {core::Algorithm::kEgC, core::Algorithm::kEgBw, core::Algorithm::kEg,
          core::Algorithm::kDbaStar}) {
      util::Rng rng(11);
      dc::Occupancy occupancy(datacenter);
      sim::apply_sim_preload(occupancy, rng);
      const auto app =
          sim::make_mesh(zones, sim::RequirementMix::kHeterogeneous, rng);
      core::SearchConfig config;
      config.deadline_seconds = 0.1 * zones;
      const core::Placement placement = core::place_topology(
          occupancy, app, algorithm, config, nullptr, nullptr);
      if (!placement.feasible) {
        std::cout << "  " << core::to_string(algorithm)
                  << ": infeasible: " << placement.failure_reason << "\n";
        continue;
      }
      std::cout << "  " << core::to_string(algorithm) << ": "
                << placement.reserved_bandwidth_mbps / 1000.0
                << " Gbps reserved, " << placement.hosts_used
                << " hosts used, " << placement.stats.runtime_seconds
                << " s\n";
    }
    std::cout << "\n";
  }
  return 0;
}
