// The paper's testbed story end to end (Sections IV-A/IV-B): the QFS cloud
// storage application is placed on the 16-host testbed under non-uniform
// availability by each algorithm, and the consequences are made visible by
// running the simulated QFS client benchmark on every placement.
//
// Build & run:  ./build/examples/qfs_placement [--uniform]
#include <cstring>
#include <iostream>

#include "core/scheduler.h"
#include "qfs/qfs.h"
#include "sim/clusters.h"
#include "sim/workloads.h"

int main(int argc, char** argv) {
  using namespace ostro;
  const bool uniform =
      argc > 1 && std::strcmp(argv[1], "--uniform") == 0;

  const dc::DataCenter datacenter = sim::make_testbed();
  const topo::AppTopology app = sim::make_qfs();
  std::cout << "QFS topology: " << app.node_count() << " nodes, "
            << app.edge_count() << " pipes, total "
            << app.total_edge_bandwidth() << " Mbps\n"
            << "testbed: " << datacenter.host_count() << " hosts, "
            << (uniform ? "uniform (idle)" : "non-uniform (pre-loaded)")
            << " availability\n\n";

  for (const auto algorithm :
       {core::Algorithm::kEgC, core::Algorithm::kEgBw, core::Algorithm::kEg,
        core::Algorithm::kBaStar, core::Algorithm::kDbaStar}) {
    dc::Occupancy occupancy(datacenter);
    util::Rng rng(42);
    if (!uniform) sim::apply_testbed_preload(occupancy, rng);

    core::SearchConfig config;
    config.theta_bw = 0.99;  // Section IV-B: bandwidth first
    config.theta_c = 0.01;
    config.deadline_seconds = 0.5;  // DBA* budget, as in Table I
    const core::Placement placement = core::place_topology(
        occupancy, app, algorithm, config, nullptr, nullptr);
    if (!placement.feasible) {
      std::cout << core::to_string(algorithm)
                << ": infeasible: " << placement.failure_reason << "\n";
      continue;
    }
    if (placement.bandwidth_overcommitted) {
      std::cout << core::to_string(algorithm)
                << ": placement overcommits link bandwidth ("
                << placement.reserved_bandwidth_mbps
                << " Mbps reserved); benchmark skipped\n";
      continue;
    }
    net::commit_placement(occupancy, app, placement.assignment);

    const qfs::QfsCluster cluster(app, placement.assignment, occupancy);
    const auto bench = cluster.write_benchmark(4096.0, /*replication=*/2,
                                               /*offered_mbps=*/16000.0);
    std::cout << core::to_string(algorithm) << ":\n"
              << "  reserved bandwidth " << placement.reserved_bandwidth_mbps
              << " Mbps, new hosts " << placement.new_active_hosts
              << ", solve time " << placement.stats.runtime_seconds << " s\n"
              << "  QFS write benchmark: " << bench.aggregate_mbps
              << " Mbps aggregate, " << bench.completion_seconds
              << " s for 4 GB (" << bench.colocated_flows << "/"
              << bench.flows << " flows co-located)\n";
  }
  return 0;
}
