// Online adaptation (Section IV-E): a deployed multi-tier application is
// grown by 10% additional small VMs on its web tier; the updated topology
// is re-placed with the existing nodes pinned (incremental update), and if
// the old placement left no headroom, the nodes adjacent to the growth are
// progressively released to move (the paper's "re-positioning").
//
// Build & run:  ./build/examples/online_adaptation
#include <iostream>
#include <unordered_set>

#include "core/scheduler.h"
#include "core/verify.h"
#include "sim/clusters.h"
#include "sim/workloads.h"

int main() {
  using namespace ostro;
  constexpr int kVms = 100;

  const dc::DataCenter datacenter = sim::make_sim_datacenter(40, 16);
  dc::Occupancy occupancy(datacenter);
  util::Rng rng(7);
  sim::apply_sim_preload(occupancy, rng);

  const topo::AppTopology base =
      sim::make_multitier(kVms, sim::RequirementMix::kHeterogeneous, rng);
  core::SearchConfig config;
  config.deadline_seconds = 5.0;
  const core::Placement first = core::place_topology(
      occupancy, base, core::Algorithm::kDbaStar, config, nullptr, nullptr);
  if (!first.feasible) {
    std::cerr << "initial placement failed: " << first.failure_reason << "\n";
    return 1;
  }
  std::cout << "initial placement: " << base.node_count() << " VMs, "
            << first.reserved_bandwidth_mbps << " Mbps reserved, "
            << first.stats.runtime_seconds << " s\n";

  // Grow tier 2 by 10% small VMs (nodes of the base keep their ids).
  const topo::AppTopology grown = sim::grow_multitier(
      base, kVms, kVms / 10, /*tier_index=*/1,
      sim::RequirementMix::kHeterogeneous, rng);
  std::cout << "grown topology: +" << grown.node_count() - base.node_count()
            << " VMs on tier 2\n";

  // Attempt 1: everything pinned (pure incremental).
  config.deadline_seconds = 1.0;
  net::Assignment pinned(grown.node_count(), dc::kInvalidHost);
  for (topo::NodeId v = 0; v < base.node_count(); ++v) {
    pinned[v] = first.assignment[v];
  }
  core::Placement delta = core::place_topology(
      occupancy, grown, core::Algorithm::kDbaStar, config, &pinned, nullptr);

  if (!delta.feasible) {
    // Attempt 2: release the neighbors of the new VMs.
    std::cout << "fully pinned update infeasible ("
              << delta.failure_reason
              << "); releasing neighbors of the new VMs\n";
    std::unordered_set<topo::NodeId> release;
    for (auto v = static_cast<topo::NodeId>(base.node_count());
         v < grown.node_count(); ++v) {
      for (const auto& nb : grown.neighbors(v)) release.insert(nb.node);
    }
    for (const auto v : release) {
      if (v < base.node_count()) pinned[v] = dc::kInvalidHost;
    }
    delta = core::place_topology(occupancy, grown, core::Algorithm::kDbaStar,
                                 config, &pinned, nullptr);
  }
  if (!delta.feasible) {
    std::cerr << "re-placement failed: " << delta.failure_reason << "\n";
    return 1;
  }

  int moved = 0;
  for (topo::NodeId v = 0; v < base.node_count(); ++v) {
    if (delta.assignment[v] != first.assignment[v]) ++moved;
  }
  std::cout << "re-placement done in " << delta.stats.runtime_seconds
            << " s; " << moved << " of " << base.node_count()
            << " existing nodes moved\n"
            << "verification: "
            << (core::verify_placement(occupancy, grown, delta.assignment)
                        .empty()
                    ? "OK"
                    : "VIOLATIONS")
            << "\n";
  return 0;
}
