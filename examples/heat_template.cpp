// The Figure-1 integration flow: a QoS-enhanced Heat template goes through
// the Ostro wrapper, comes back annotated with force_host scheduler hints,
// and is deployed by the (simulated) Heat engine via Nova and Cinder.
//
// Build & run:  ./build/examples/heat_template [template.json]
// Without an argument a built-in three-tier template is used; pass a path
// to deploy your own (see the template grammar in
// src/openstack/heat_template.h).
#include <fstream>
#include <iostream>
#include <sstream>

#include "openstack/ostro_wrapper.h"
#include "sim/clusters.h"

namespace {

constexpr const char* kDefaultTemplate = R"({
  "heat_template_version": "2014-10-16",
  "description": "three-tier web application with QoS pipes",
  "resources": {
    "lb":    {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}},
    "web0":  {"type": "OS::Nova::Server", "properties": {"flavor": "m1.medium"}},
    "web1":  {"type": "OS::Nova::Server", "properties": {"flavor": "m1.medium"}},
    "db":    {"type": "OS::Nova::Server",
              "properties": {"flavor": {"vcpus": 4, "ram_gb": 16}}},
    "dbvol": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 200}},
    "p-lb0": {"type": "ATT::QoS::Pipe",
              "properties": {"from": "lb", "to": "web0", "bandwidth_mbps": 200}},
    "p-lb1": {"type": "ATT::QoS::Pipe",
              "properties": {"from": "lb", "to": "web1", "bandwidth_mbps": 200}},
    "p-w0d": {"type": "ATT::QoS::Pipe",
              "properties": {"from": "web0", "to": "db", "bandwidth_mbps": 100}},
    "p-w1d": {"type": "ATT::QoS::Pipe",
              "properties": {"from": "web1", "to": "db", "bandwidth_mbps": 100}},
    "p-dv":  {"type": "ATT::QoS::Pipe",
              "properties": {"from": "db", "to": "dbvol", "bandwidth_mbps": 300}},
    "dz-web": {"type": "ATT::Valet::DiversityZone",
               "properties": {"level": "host", "members": ["web0", "web1"]}}
  }
})";

}  // namespace

int main(int argc, char** argv) {
  using namespace ostro;

  std::string text = kDefaultTemplate;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  const dc::DataCenter datacenter = sim::make_testbed();
  core::OstroScheduler scheduler(datacenter);
  util::Rng rng(42);
  sim::apply_testbed_preload(scheduler.occupancy(), rng);

  os::HeatEngine engine(scheduler.occupancy());
  os::OstroHeatWrapper wrapper(scheduler, engine);
  const os::WrapperResult result =
      wrapper.process_text(text, core::Algorithm::kEg);

  if (!result.deployment.success) {
    std::cerr << "deployment failed: " << result.deployment.failure << "\n";
    return 1;
  }
  std::cout << "annotated template (scheduler hints added by Ostro):\n"
            << result.annotated_template.pretty() << "\n\n"
            << "stack deployed: reserved "
            << result.deployment.reserved_bandwidth_mbps
            << " Mbps on physical links, "
            << result.deployment.new_active_hosts
            << " newly activated hosts\n";
  return 0;
}
